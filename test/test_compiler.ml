(* Compiler tests: dependence analysis / pattern selection, strength
   reduction (.xi), register allocation, and end-to-end compile+run
   equivalence across targets and execution modes. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Insn = Xloops_isa.Insn

let arr name ty len = { Ast.a_name = name; a_ty = ty; a_len = len }

(* -- Analysis: linear forms ------------------------------------------- *)

let test_linear_forms () =
  let open Ast.Syntax in
  let check e expect_coeff =
    match Analysis.linear_in "i" e with
    | Some l -> Alcotest.(check int) "coeff" expect_coeff l.coeff
    | None -> Alcotest.fail "expected linear"
  in
  check (v "i") 1;
  check (v "i" * i 4 + i 3) 4;
  check (v "i" lsl i 2) 4;
  check (v "n" * i 2) 0;
  check (v "i" * i 3 - v "i") 2;
  check (v "i" + v "j") 1;
  (match Analysis.linear_in "i" (v "i" * v "i") with
   | None -> ()
   | Some _ -> Alcotest.fail "i*i is not linear")

(* -- Analysis: pattern selection --------------------------------------- *)

let classify_loop body ~pragma ~hi =
  Analysis.classify { Ast.index = "i"; lo = Ast.Int 0; hi;
                      pragma = Some pragma; body }

let dp (c : Analysis.classification) = c.pattern.Insn.dp
let cp (c : Analysis.classification) = c.pattern.Insn.cp

let test_classify_uc () =
  let open Ast.Syntax in
  (* a[i] = b[i] + 1 : ordered annotation, but provably independent. *)
  let c = classify_loop ~pragma:Ordered ~hi:(v "n")
      [ Ast.Store ("a", v "i", "b".%[v "i"] + i 1) ] in
  Alcotest.(check bool) "uc" true (Insn.equal_dpattern (dp c) Insn.Uc)

let test_classify_or () =
  let open Ast.Syntax in
  (* sum = sum + b[i]; a[i] = sum : register-carried. *)
  let c = classify_loop ~pragma:Ordered ~hi:(v "n")
      [ Ast.Assign ("sum", v "sum" + "b".%[v "i"]);
        Ast.Store ("a", v "i", v "sum") ] in
  Alcotest.(check bool) "or" true (Insn.equal_dpattern (dp c) Insn.Or);
  Alcotest.(check (list string)) "cir" [ "sum" ] c.cir_scalars

let test_classify_om () =
  let open Ast.Syntax in
  (* a[i] = a[i-1] + 1 : memory-carried, distance 1. *)
  let c = classify_loop ~pragma:Ordered ~hi:(v "n")
      [ Ast.Store ("a", v "i", "a".%[v "i" - i 1] + i 1) ] in
  Alcotest.(check bool) "om" true (Insn.equal_dpattern (dp c) Insn.Om);
  Alcotest.(check (list string)) "dep arrays" [ "a" ] c.dep_arrays

let test_classify_orm () =
  let open Ast.Syntax in
  let c = classify_loop ~pragma:Ordered ~hi:(v "n")
      [ Ast.Assign ("k", v "k" + i 1);
        Ast.Store ("a", v "i", "a".%[v "i" - i 1] + v "k") ] in
  Alcotest.(check bool) "orm" true (Insn.equal_dpattern (dp c) Insn.Orm)

let test_classify_same_subscript_no_dep () =
  let open Ast.Syntax in
  (* a[i] = a[i] * 2 : distance 0 is intra-iteration only. *)
  let c = classify_loop ~pragma:Ordered ~hi:(v "n")
      [ Ast.Store ("a", v "i", "a".%[v "i"] * i 2) ] in
  Alcotest.(check bool) "uc (distance 0)" true (Insn.equal_dpattern (dp c) Insn.Uc)

let test_classify_private_scalar () =
  let open Ast.Syntax in
  (* let t = b[i]; a[i] = t : t is private, no carry. *)
  let c = classify_loop ~pragma:Ordered ~hi:(v "n")
      [ Ast.Decl ("t", "b".%[v "i"]);
        Ast.Store ("a", v "i", v "t") ] in
  Alcotest.(check bool) "uc" true (Insn.equal_dpattern (dp c) Insn.Uc)

let test_classify_branch_read () =
  let open Ast.Syntax in
  (* if c[i]: s = 1 else: a[i] = s — read on one path only: carried. *)
  let c = classify_loop ~pragma:Ordered ~hi:(v "n")
      [ Ast.If ("c".%[v "i"],
                [ Ast.Assign ("s", i 1) ],
                [ Ast.Store ("a", v "i", v "s") ]) ] in
  Alcotest.(check bool) "or" true (Insn.equal_dpattern (dp c) Insn.Or)

let test_classify_dynamic_bound () =
  let open Ast.Syntax in
  let c = classify_loop ~pragma:Unordered ~hi:("tail".%[i 0])
      [ Ast.Store ("tail", i 0, "tail".%[i 0] + i 1) ] in
  Alcotest.(check bool) "db" true (Insn.equal_cpattern (cp c) Insn.Dyn && Insn.equal_dpattern (dp c) Insn.Uc)

let test_classify_atomic () =
  let open Ast.Syntax in
  let c = classify_loop ~pragma:Atomic ~hi:(v "n")
      [ Ast.Store ("h", "b".%[v "i"], "h".%["b".%[v "i"]] + i 1) ] in
  Alcotest.(check bool) "ua" true (Insn.equal_dpattern (dp c) Insn.Ua)

let test_amo_pairs_no_dep () =
  let open Ast.Syntax in
  (* Two atomic updates of the same cell do not by themselves order the
     loop. *)
  let c = classify_loop ~pragma:Ordered ~hi:(v "n")
      [ Ast.Decl ("_old", Ast.Amo (Aadd, "cnt", i 0, i 1)) ] in
  Alcotest.(check bool) "uc" true (Insn.equal_dpattern (dp c) Insn.Uc)

(* -- Compilation ------------------------------------------------------- *)

let vadd_kernel n : Ast.kernel =
  let open Ast.Syntax in
  {
  k_name = "vadd";
  arrays = [ arr "a" I32 n; arr "b" I32 n; arr "c" I32 n ];
  consts = [ ("n", n) ];
  k_body =
    [ for_ ~pragma:Unordered "j" (i 0) (v "n")
        [ Ast.Store ("c", v "j", "a".%[v "j"] + "b".%[v "j"]) ] ];
}

let count_insns p pred =
  Array.fold_left (fun acc i -> if pred i then acc + 1 else acc) 0
    p.Xloops_asm.Program.insns

let test_targets_differ () =
  let k = vadd_kernel 16 in
  let cx = Compile.compile ~target:Compile.xloops k in
  let cg = Compile.compile ~target:Compile.general k in
  let cnx = Compile.compile ~target:Compile.xloops_no_xi k in
  Alcotest.(check bool) "xloops has xloop" true
    (count_insns cx.program Insn.is_xloop > 0);
  Alcotest.(check bool) "xloops has xi" true
    (count_insns cx.program Insn.is_xi > 0);
  Alcotest.(check int) "general has no xloop" 0
    (count_insns cg.program Insn.is_xloop);
  Alcotest.(check int) "general has no xi" 0
    (count_insns cg.program Insn.is_xi);
  Alcotest.(check bool) "no-xi has xloop" true
    (count_insns cnx.program Insn.is_xloop > 0);
  Alcotest.(check int) "no-xi has no xi" 0
    (count_insns cnx.program Insn.is_xi)

(* Run a compiled kernel and return an output array. *)
let run_compiled ?(cfg = Config.io) ?(mode = Machine.Traditional)
    (c : Compile.compiled) ~init ~out ~out_len =
  let mem = Memory.create () in
  init c mem;
  let r = Machine.ok_exn (Machine.simulate ~cfg ~mode c.program mem) in
  (r, Memory.read_int_array mem ~addr:(c.array_base out) ~n:out_len)

let init_vadd n (c : Compile.compiled) mem =
  for j = 0 to n - 1 do
    Memory.set_int mem (c.array_base "a" + 4 * j) (j * 2);
    Memory.set_int mem (c.array_base "b" + 4 * j) (100 - j)
  done

let test_compile_and_run_vadd () =
  let n = 20 in
  let k = vadd_kernel n in
  let c = Compile.compile ~target:Compile.xloops k in
  let _, out = run_compiled c ~init:(init_vadd n) ~out:"c" ~out_len:n in
  Array.iteri
    (fun j x -> Alcotest.(check int) (Printf.sprintf "c[%d]" j)
        ((j * 2) + (100 - j)) x)
    out

let test_target_equivalence_vadd () =
  let n = 20 in
  let k = vadd_kernel n in
  let layout_consistent target =
    let c = Compile.compile ~target k in
    let _, out = run_compiled c ~init:(init_vadd n) ~out:"c" ~out_len:n in
    out
  in
  let g = layout_consistent Compile.general in
  let x = layout_consistent Compile.xloops in
  let nx = layout_consistent Compile.xloops_no_xi in
  Alcotest.(check (array int)) "general = xloops" g x;
  Alcotest.(check (array int)) "general = no-xi" g nx

let test_specialized_run_vadd () =
  let n = 64 in
  let k = vadd_kernel n in
  let c = Compile.compile ~target:Compile.xloops k in
  let r, out = run_compiled ~cfg:Config.io_x ~mode:Machine.Specialized c
      ~init:(init_vadd n) ~out:"c" ~out_len:n in
  Alcotest.(check bool) "specialized" true
    (r.Machine.stats.xloops_specialized > 0);
  Array.iteri
    (fun j x -> Alcotest.(check int) "elem" ((j * 2) + (100 - j)) x)
    out

(* sgemm: nested loops, inner unordered; exercises multi-level strength
   reduction and loop-invariant address hoisting. *)
let sgemm_kernel n : Ast.kernel =
  let nn = n * n in
  let open Ast.Syntax in
  {
  k_name = "sgemm-test";
  arrays = [ arr "ma" I32 nn; arr "mb" I32 nn; arr "mc" I32 nn ];
  consts = [ ("n", n) ];
  k_body =
    [ for_ "r" (i 0) (v "n")
        [ for_ ~pragma:Unordered "cidx" (i 0) (v "n")
            [ Ast.Decl ("acc", i 0);
              for_ "k" (i 0) (v "n")
                [ Ast.Assign
                    ("acc",
                     v "acc"
                     + ("ma".%[(v "r" * v "n") + v "k"]
                        * "mb".%[(v "k" * v "n") + v "cidx"])) ];
              Ast.Store ("mc", (v "r" * v "n") + v "cidx", v "acc") ] ] ];
}

let test_sgemm_correct () =
  let n = 6 in
  let k = sgemm_kernel n in
  let ref_c = Array.make (n * n) 0 in
  let a_v r c = (r + c + 1) mod 7 and b_v r c = (r * 2 + c) mod 5 in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      let s = ref 0 in
      for kk = 0 to n - 1 do s := !s + (a_v r kk * b_v kk c) done;
      ref_c.((r * n) + c) <- !s
    done
  done;
  let init (c : Compile.compiled) mem =
    for r = 0 to n - 1 do
      for cc = 0 to n - 1 do
        Memory.set_int mem (c.array_base "ma" + 4 * ((r * n) + cc))
          (a_v r cc);
        Memory.set_int mem (c.array_base "mb" + 4 * ((r * n) + cc))
          (b_v r cc)
      done
    done
  in
  List.iter
    (fun (name, cfg, mode, target) ->
       let c = Compile.compile ~target k in
       let _, out = run_compiled ~cfg ~mode c ~init ~out:"mc"
           ~out_len:(n * n) in
       Alcotest.(check (array int)) name ref_c out)
    [ ("general/io", Config.io, Machine.Traditional, Compile.general);
      ("xloops/trad", Config.io, Machine.Traditional, Compile.xloops);
      ("xloops/spec", Config.io_x, Machine.Specialized, Compile.xloops);
      ("noxi/spec", Config.ooo2_x, Machine.Specialized,
       Compile.xloops_no_xi) ]

(* Ordered prefix sum end-to-end: compiler must choose xloop.or and the
   LPSU must produce serial results. *)
let prefix_kernel n : Ast.kernel =
  let open Ast.Syntax in
  {
  k_name = "prefix-test";
  arrays = [ arr "src" I32 n; arr "dst" I32 n ];
  consts = [ ("n", n) ];
  k_body =
    [ Ast.Decl ("sum", i 0);
      for_ ~pragma:Ordered "j" (i 0) (v "n")
        [ Ast.Assign ("sum", v "sum" + "src".%[v "j"]);
          Ast.Store ("dst", v "j", v "sum") ] ];
}

let test_prefix_or_end_to_end () =
  let n = 50 in
  let c = Compile.compile ~target:Compile.xloops (prefix_kernel n) in
  (* The xloop must carry the .or pattern. *)
  let has_or = count_insns c.program (fun insn ->
      match insn with
      | Insn.Xloop ({ dp = Or; _ }, _, _, _) -> true
      | _ -> false) in
  Alcotest.(check bool) "or pattern emitted" true (has_or > 0);
  let init (c : Compile.compiled) mem =
    for j = 0 to n - 1 do
      Memory.set_int mem (c.array_base "src" + 4 * j) (j + 1)
    done
  in
  let _, out = run_compiled ~cfg:Config.io_x ~mode:Machine.Specialized c
      ~init ~out:"dst" ~out_len:n in
  let sum = ref 0 in
  Array.iteri
    (fun j x ->
       sum := !sum + (j + 1);
       Alcotest.(check int) (Printf.sprintf "dst[%d]" j) !sum x)
    out

(* Register-pressure: many simultaneously-live scalars force spilling
   outside loops (works), and inside an annotated body (rejected). *)
let spilly_kernel : Ast.kernel =
  let open Ast.Syntax in
  let decls = List.init 30 (fun j -> Ast.Decl (Printf.sprintf "x%d" j, i j)) in
  let sum =
    List.init 30 (fun j -> v (Printf.sprintf "x%d" j))
    |> List.fold_left (fun acc e -> acc + e) (i 0)
  in
  { k_name = "spilly";
    arrays = [ arr "out" I32 1 ];
    consts = [];
    k_body = decls @ [ Ast.Store ("out", i 0, sum) ] }

let test_spill_outside_loops () =
  let c = Compile.compile ~target:Compile.general spilly_kernel in
  Alcotest.(check bool) "spilled" true (c.spill_slots > 0);
  let _, out = run_compiled c ~init:(fun _ _ -> ()) ~out:"out" ~out_len:1 in
  Alcotest.(check int) "sum 0..29" (30 * 29 / 2) out.(0)

let pressure_kernel : Ast.kernel =
  let open Ast.Syntax in
  let decls =
    List.init 30 (fun j -> Ast.Decl (Printf.sprintf "y%d" j, v "j" + i j)) in
  let sum =
    List.init 30 (fun j -> v (Printf.sprintf "y%d" j))
    |> List.fold_left (fun acc e -> acc + e) (i 0)
  in
  { k_name = "pressure";
    arrays = [ arr "out" I32 64 ];
    consts = [];
    k_body =
      [ for_ ~pragma:Unordered "j" (i 0) (i 64)
          (decls @ [ Ast.Store ("out", v "j", sum) ]) ] }

let test_spill_inside_xloop_rejected () =
  Alcotest.(check bool) "rejected" true
    (try ignore (Compile.compile ~target:Compile.xloops pressure_kernel);
       false
     with Compile.Error _ -> true);
  (* The general-purpose target compiles the same kernel fine. *)
  let c = Compile.compile ~target:Compile.general pressure_kernel in
  let _, out = run_compiled c ~init:(fun _ _ -> ()) ~out:"out" ~out_len:64 in
  Alcotest.(check int) "out[5]"
    (List.init 30 (fun j -> 5 + j) |> List.fold_left ( + ) 0)
    out.(5)

(* Control flow inside kernels: while / if. *)
let collatz_kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "ctl";
    arrays = [ arr "inp" I32 16; arr "outp" I32 16 ];
    consts = [];
    k_body =
      [ for_ ~pragma:Unordered "j" (i 0) (i 16)
          [ Ast.Decl ("x", "inp".%[v "j"]);
            Ast.Decl ("c", i 0);
            Ast.While (v "x" > i 1,
                       [ Ast.If (v "x" land i 1 = i 0,
                                 [ Ast.Assign ("x", v "x" lsr i 1) ],
                                 [ Ast.Assign ("x", v "x" * i 3 + i 1) ]);
                         Ast.Assign ("c", v "c" + i 1) ]);
            Ast.Store ("outp", v "j", v "c") ] ] }

let test_control_flow_kernel () =
  let collatz_steps x =
    let rec go x c = if x <= 1 then c
      else if x mod 2 = 0 then go (x / 2) (c + 1)
      else go ((3 * x) + 1) (c + 1) in
    go x 0
  in
  let init (c : Compile.compiled) mem =
    for j = 0 to 15 do
      Memory.set_int mem (c.array_base "inp" + 4 * j) (j + 1)
    done
  in
  List.iter
    (fun (name, cfg, mode, target) ->
       let c = Compile.compile ~target collatz_kernel in
       let _, out = run_compiled ~cfg ~mode c ~init ~out:"outp" ~out_len:16 in
       Array.iteri
         (fun j x ->
            Alcotest.(check int) (Printf.sprintf "%s[%d]" name j)
              (collatz_steps (j + 1)) x)
         out)
    [ ("gen", Config.io, Machine.Traditional, Compile.general);
      ("spec", Config.io_x, Machine.Specialized, Compile.xloops) ]

let saxpy_kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "saxpy";
    arrays = [ arr "fx" F32 8; arr "fy" F32 8 ];
    consts = [];
    k_body =
      [ for_ ~pragma:Unordered "j" (i 0) (i 8)
          [ Ast.Store ("fy", v "j",
                       Ast.Flt 2.5 * "fx".%[v "j"] + "fy".%[v "j"]) ] ] }

let test_float_kernel () =
  let c = Compile.compile ~target:Compile.xloops saxpy_kernel in
  let mem = Memory.create () in
  for j = 0 to 7 do
    Memory.set_f32 mem (c.array_base "fx" + 4 * j) (float_of_int j);
    Memory.set_f32 mem (c.array_base "fy" + 4 * j) 1.0
  done;
  ignore (Machine.ok_exn
            (Machine.simulate ~cfg:Config.io_x ~mode:Specialized
               c.program mem));
  for j = 0 to 7 do
    Alcotest.(check (float 0.001)) (Printf.sprintf "fy[%d]" j)
      ((2.5 *. float_of_int j) +. 1.0)
      (Memory.get_f32 mem (c.array_base "fy" + 4 * j))
  done

(* -- error paths ---------------------------------------------------------- *)

let expect_error name k =
  Alcotest.(check bool) name true
    (try ignore (Compile.compile k); false
     with Compile.Error _ | Invalid_argument _ -> true)

let test_error_unbound_var () =
  expect_error "unbound var"
    { Ast.k_name = "bad"; arrays = []; consts = [];
      k_body = [ Ast.Decl ("x", Var "nope") ] }

let test_error_unknown_array () =
  expect_error "unknown array"
    { Ast.k_name = "bad"; arrays = []; consts = [];
      k_body = [ Ast.Decl ("x", Load ("ghost", Int 0)) ] }

let test_error_mixed_types () =
  expect_error "int+float without cast"
    { Ast.k_name = "bad";
      arrays = [ arr "f" F32 1 ];
      consts = [];
      k_body = [ Ast.Decl ("x", Bin (Add, Load ("f", Int 0), Int 1)) ] }

let test_error_amo_on_bytes () =
  expect_error "amo on u8 array"
    { Ast.k_name = "bad";
      arrays = [ arr "bytes" U8 16 ];
      consts = [];
      k_body = [ Ast.Decl ("x", Amo (Aadd, "bytes", Int 0, Int 1)) ] }

let test_error_shadowed_const () =
  expect_error "local shadows const"
    { Ast.k_name = "bad";
      arrays = [];
      consts = [ ("n", 4) ];
      k_body = [ Ast.Decl ("n", Int 1) ] }

let test_error_assign_const () =
  expect_error "assign to const"
    { Ast.k_name = "bad";
      arrays = [];
      consts = [ ("n", 4) ];
      k_body = [ Ast.Assign ("n", Int 1) ] }

let test_error_float_bitops () =
  expect_error "float & float"
    { Ast.k_name = "bad";
      arrays = [ arr "f" F32 2 ];
      consts = [];
      k_body =
        [ Ast.Decl ("x", Bin (And, Load ("f", Int 0), Load ("f", Int 1)))
        ] }

(* -- printer smoke -------------------------------------------------------- *)

let test_kernel_printer () =
  let k = (Xloops_kernels.Registry.find "bfs-uc-db").kernel in
  let s = Fmt.str "%a" Ast.pp_kernel k in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun frag ->
       Alcotest.(check bool) ("prints " ^ frag) true (contains frag))
    [ "#pragma xloops unordered"; "amo_xchg"; "while"; "kernel bfs-uc-db" ]

let () =
  Alcotest.run "compiler"
    [ ("linear", [ Alcotest.test_case "forms" `Quick test_linear_forms ]);
      ("classify",
       [ Alcotest.test_case "independent -> uc" `Quick test_classify_uc;
         Alcotest.test_case "scalar carry -> or" `Quick test_classify_or;
         Alcotest.test_case "memory carry -> om" `Quick test_classify_om;
         Alcotest.test_case "both -> orm" `Quick test_classify_orm;
         Alcotest.test_case "distance 0 ok" `Quick
           test_classify_same_subscript_no_dep;
         Alcotest.test_case "private scalar" `Quick
           test_classify_private_scalar;
         Alcotest.test_case "branch read" `Quick test_classify_branch_read;
         Alcotest.test_case "dynamic bound" `Quick
           test_classify_dynamic_bound;
         Alcotest.test_case "atomic" `Quick test_classify_atomic;
         Alcotest.test_case "amo pairs" `Quick test_amo_pairs_no_dep ]);
      ("codegen",
       [ Alcotest.test_case "targets differ" `Quick test_targets_differ;
         Alcotest.test_case "vadd runs" `Quick test_compile_and_run_vadd;
         Alcotest.test_case "target equivalence" `Quick
           test_target_equivalence_vadd;
         Alcotest.test_case "vadd specialized" `Quick
           test_specialized_run_vadd;
         Alcotest.test_case "sgemm nested" `Quick test_sgemm_correct;
         Alcotest.test_case "prefix or" `Quick test_prefix_or_end_to_end;
         Alcotest.test_case "floats" `Quick test_float_kernel;
         Alcotest.test_case "control flow" `Quick
           test_control_flow_kernel ]);
      ("regalloc",
       [ Alcotest.test_case "spill outside" `Quick test_spill_outside_loops;
         Alcotest.test_case "spill in xloop rejected" `Quick
           test_spill_inside_xloop_rejected ]);
      ("errors",
       [ Alcotest.test_case "unbound var" `Quick test_error_unbound_var;
         Alcotest.test_case "unknown array" `Quick test_error_unknown_array;
         Alcotest.test_case "mixed types" `Quick test_error_mixed_types;
         Alcotest.test_case "amo on bytes" `Quick test_error_amo_on_bytes;
         Alcotest.test_case "shadowed const" `Quick
           test_error_shadowed_const;
         Alcotest.test_case "assign const" `Quick test_error_assign_const;
         Alcotest.test_case "float bitops" `Quick test_error_float_bitops ]);
      ("printer",
       [ Alcotest.test_case "kernel source" `Quick test_kernel_printer ]);
    ]
