(* Data-dependent-exit extension (xloop.*.de): ISA round-trip, compiler
   lowering, traditional semantics, and — the interesting part — control
   speculation on the LPSU: iterations beyond the exit run speculatively
   and leave no architectural trace. *)

open Xloops_compiler
module Insn = Xloops_isa.Insn
module Encode = Xloops_isa.Encode
module Memory = Xloops_mem.Memory
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Kernel = Xloops_kernels.Kernel
module Registry = Xloops_kernels.Registry

let de dp = { Insn.dp; cp = De }

let run_serial p mem =
  match Xloops_sim.Exec.run_serial p mem with
  | Ok r -> r
  | Error stop -> failwith (Fmt.str "%a" Xloops_sim.Exec.pp_stop stop)

let test_encode_roundtrip () =
  List.iter
    (fun dp ->
       let i : int Insn.t = Xloop (de dp, 12, 11, 3) in
       let w = Encode.to_word 10 i in
       Alcotest.(check bool)
         (Fmt.str "roundtrip %a" Insn.pp_xpat_suffix (de dp))
         true
         (Insn.equal Int.equal i (Encode.of_word 10 w)))
    Insn.[ Uc; Or; Om; Orm; Ua ]

let test_suffix_printing () =
  Alcotest.(check string) "uc.de" "uc.de"
    (Fmt.str "%a" Insn.pp_xpat_suffix (de Insn.Uc))

let test_parser_roundtrip () =
  let p = Xloops_asm.Parser.parse {|
    body:
      addiu.xi t4, t4, 1
      xloop.uc.de t4, t3, body
      halt
  |} in
  (match p.insns.(1) with
   | Insn.Xloop ({ dp = Uc; cp = De }, _, _, 0) -> ()
   | i -> Alcotest.failf "bad parse: %a" Insn.pp_resolved i)

(* Traditional semantics: the xloop.de branches back while the exit
   register is clear. *)
let test_traditional_semantics () =
  let b = Xloops_asm.Builder.create () in
  let t0 = 8 and t1 = 9 and t2 = 10 in
  Xloops_asm.Builder.li b t0 0;       (* idx *)
  Xloops_asm.Builder.li b t2 0;       (* sum *)
  Xloops_asm.Builder.label b "body";
  Xloops_asm.Builder.add b t2 t2 t0;
  Xloops_asm.Builder.xi_addi b t0 t0 1;
  (* exit when idx reaches 5 *)
  Xloops_asm.Builder.alu b Slt t1 t0 (Xloops_isa.Reg.zero);  (* t1 = 0 *)
  Xloops_asm.Builder.alui b Slt t1 t0 5;   (* t1 = idx < 5 *)
  Xloops_asm.Builder.alui b Xor t1 t1 1;   (* exit flag = !(idx < 5) *)
  Xloops_asm.Builder.xloop b (de Insn.Uc) t0 t1 "body";
  Xloops_asm.Builder.halt b;
  let p = Xloops_asm.Builder.assemble b in
  let r = run_serial p (Memory.create ()) in
  Alcotest.(check int32) "sum 0..4" 10l (Xloops_sim.Exec.get r.final t2)

(* The find-de kernel end to end across targets and machines. *)
let run_find ~target ~cfg ~mode () =
  let k = Registry.find "find-de" in
  let r = Kernel.run ~target ~cfg ~mode k in
  (match r.Kernel.check_result with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  r.result

let test_find_general () =
  ignore (run_find ~target:Compile.general ~cfg:Config.io
            ~mode:Machine.Traditional ())

let test_find_traditional () =
  ignore (run_find ~target:Compile.xloops ~cfg:Config.io
            ~mode:Machine.Traditional ())

let test_find_specialized () =
  let r = run_find ~target:Compile.xloops ~cfg:Config.io_x
      ~mode:Machine.Specialized () in
  Alcotest.(check bool) "specialized" true
    (r.Machine.stats.xloops_specialized > 0);
  (* Control speculation: the lanes ran past the exit and were
     discarded. *)
  Alcotest.(check bool) "speculative work discarded" true
    (r.Machine.stats.squashed_insns > 0)

let test_find_specialized_ooo () =
  ignore (run_find ~target:Compile.xloops ~cfg:Config.ooo4_x
            ~mode:Machine.Specialized ())

let test_find_adaptive () =
  ignore (run_find ~target:Compile.xloops ~cfg:Config.ooo2_x
            ~mode:Machine.Adaptive ())

let test_find_speedup () =
  (* The exit sits two-thirds in, so specialized execution of the scan
     still wins clearly over the serial in-order core. *)
  let t = run_find ~target:Compile.xloops ~cfg:Config.io
      ~mode:Machine.Traditional () in
  let s = run_find ~target:Compile.xloops ~cfg:Config.io_x
      ~mode:Machine.Specialized () in
  let speedup = float_of_int t.Machine.cycles /. float_of_int s.cycles in
  Alcotest.(check bool) (Printf.sprintf "speedup %.2f > 1.5" speedup)
    true (speedup > 1.5)

(* The compiler emits the .de pattern. *)
let test_compiler_emits_de () =
  let k = Registry.find "find-de" in
  let c = Compile.compile ~target:Compile.xloops k.kernel in
  let found = ref false in
  Array.iter
    (fun insn ->
       match insn with
       | Insn.Xloop ({ cp = De; dp = Uc }, _, _, _) -> found := true
       | _ -> ())
    c.program.insns;
  Alcotest.(check bool) "uc.de emitted" true !found

(* An ordered de loop (running maximum until a sentinel): register carry
   + data-dependent exit together. *)
let sentinel_kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "runmax-de";
    arrays = [ Kernel.arr "a" I32 64; Kernel.arr "best" I32 1 ];
    consts = [ ("n", 64) ];
    k_body =
      [ Ast.Decl ("mx", i 0);
        for_de ~pragma:Ordered "j" (i 0)
          ((v "stop" = i 0) land (v "j" < v "n" - i 1))
          [ Ast.Decl ("x", "a".%[v "j"]);
            Ast.If (v "x" > v "mx", [ Ast.Assign ("mx", v "x") ], []);
            Ast.Decl ("stop", v "x" = i 0) ];   (* sentinel: zero *)
        Ast.Store ("best", i 0, v "mx") ] }

let test_ordered_de () =
  let vals = Array.init 64 (fun i -> if i = 40 then 0 else (i * 37) mod 500 + 1) in
  let reference =
    let mx = ref 0 in
    (try
       for j = 0 to 63 do
         if vals.(j) > !mx then mx := vals.(j);
         if vals.(j) = 0 then raise Exit
       done
     with Exit -> ());
    !mx
  in
  List.iter
    (fun (target, cfg, mode) ->
       let c = Compile.compile ~target sentinel_kernel in
       let mem = Memory.create () in
       Memory.blit_int_array mem ~addr:(c.array_base "a") vals;
       ignore (Machine.simulate ~cfg ~mode c.program mem);
       Alcotest.(check int) "running max" reference
         (Memory.get_int mem (c.array_base "best")))
    [ (Compile.general, Config.io, Machine.Traditional);
      (Compile.xloops, Config.io, Machine.Traditional);
      (Compile.xloops, Config.io_x, Machine.Specialized);
      (Compile.xloops, Config.ooo4_x, Machine.Specialized) ]

let () =
  Alcotest.run "de"
    [ ("isa",
       [ Alcotest.test_case "encode roundtrip" `Quick test_encode_roundtrip;
         Alcotest.test_case "suffix" `Quick test_suffix_printing;
         Alcotest.test_case "parser" `Quick test_parser_roundtrip;
         Alcotest.test_case "traditional semantics" `Quick
           test_traditional_semantics ]);
      ("find-de",
       [ Alcotest.test_case "general" `Quick test_find_general;
         Alcotest.test_case "xloops traditional" `Quick
           test_find_traditional;
         Alcotest.test_case "specialized" `Quick test_find_specialized;
         Alcotest.test_case "specialized ooo4+x" `Quick
           test_find_specialized_ooo;
         Alcotest.test_case "adaptive" `Quick test_find_adaptive;
         Alcotest.test_case "speedup" `Quick test_find_speedup;
         Alcotest.test_case "compiler emits de" `Quick
           test_compiler_emits_de ]);
      ("ordered-de",
       [ Alcotest.test_case "running max to sentinel" `Quick
           test_ordered_de ]);
    ]
