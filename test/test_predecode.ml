(* Predecoded executor: the fast path (Program.predecode + Exec.step
   over native-int registers) must be observationally identical to the
   reference decoder (Exec.step_ref over the raw instruction stream),
   and must not allocate on straight-line code.

   Three layers:
   - operator equivalence: the unboxed ALU/branch evaluators agree with
     the int32 semantic spec on corner-heavy random operands;
   - whole-program differential: random ISA programs (forward control
     flow only, so termination is structural) and every registry kernel
     run to identical registers, memory and instruction counts through
     both executors;
   - allocation regression: a multi-million-instruction straight-line
     run must stay under a small constant of bytes per instruction. *)

open Xloops_isa
module B = Xloops_asm.Builder
module Program = Xloops_asm.Program
module Memory = Xloops_mem.Memory
module Exec = Xloops_sim.Exec
module Registry = Xloops_kernels.Registry
module Kernel = Xloops_kernels.Kernel
module Compile = Xloops_compiler.Compile

(* -- operator equivalence --------------------------------------------- *)

let gen_int32 =
  let open QCheck.Gen in
  frequency
    [ 4, map Int32.of_int (int_range (-1000) 1000);
      2, map (fun i -> Int32.of_int i) (int_bound 0x7FFFFFFF);
      1, oneofl [ Int32.min_int; Int32.max_int; -1l; 0l; 1l; 31l; 32l;
                  0x80000000l; 0x7FFFFFFFl ] ]

let all_alu_ops =
  [ Insn.Add; Sub; And; Or_; Xor; Nor; Sll; Srl; Sra; Slt; Sltu;
    Mul; Mulh; Div; Rem ]

let all_branch_conds = [ Insn.Beq; Bne; Blt; Bge; Bltu; Bgeu ]

let arb_alu_case =
  QCheck.make
    ~print:(fun (op, a, b) ->
        Fmt.str "%s %ld %ld" (Insn.show_alu_op op) a b)
    QCheck.Gen.(triple (oneofl all_alu_ops) gen_int32 gen_int32)

let prop_alu_int_matches =
  QCheck.Test.make ~name:"alu_eval_int matches alu_eval" ~count:2000
    arb_alu_case
    (fun (op, a, b) ->
       Int32.of_int
         (Exec.alu_eval_int op (Int32.to_int a) (Int32.to_int b))
       = Exec.alu_eval op a b)

let prop_branch_int_matches =
  QCheck.Test.make ~name:"branch_eval_int matches branch_eval" ~count:2000
    (QCheck.make
       QCheck.Gen.(triple (oneofl all_branch_conds) gen_int32 gen_int32))
    (fun (c, a, b) ->
       Exec.branch_eval_int c (Int32.to_int a) (Int32.to_int b)
       = Exec.branch_eval c a b)

(* -- whole-program differential --------------------------------------- *)

(* Random programs with forward-only control flow: every branch or jump
   targets a strictly larger pc, so any path reaches the final Halt and
   fuel is never a factor.  Memory traffic stays inside a scratch window
   based at the (never-overwritten) register 20. *)

let scratch_base = 512

let gen_insn ~pc ~len =
  let open QCheck.Gen in
  let reg = int_range 1 15 in
  let fwd = int_range (pc + 1) len in   (* the Halt sits at [len] *)
  frequency
    [ 6, (let* op = oneofl all_alu_ops in
          let* rd = reg in
          let* rs = reg in
          let* rt = reg in
          return (Insn.Alu (op, rd, rs, rt)));
      4, (let* op = oneofl all_alu_ops in
          let* rd = reg in
          let* rs = reg in
          let* imm = int_range (-40000) 40000 in
          return (Insn.Alui (op, rd, rs, imm)));
      1, (let* rd = reg in
          let* imm = int_range 0 0xFFFF in
          return (Insn.Lui (rd, imm)));
      2, (let* rd = reg in
          let* off = int_range 0 15 in
          let* w = oneofl [ Insn.B; Bu; H; Hu; W ] in
          let off = match w with
            | B | Bu -> off | H | Hu -> 2 * off | W -> 4 * off in
          return (Insn.Load (w, rd, 20, off)));
      2, (let* rt = reg in
          let* off = int_range 0 15 in
          let* w = oneofl [ Insn.B; Bu; H; Hu; W ] in
          let off = match w with
            | B | Bu -> off | H | Hu -> 2 * off | W -> 4 * off in
          return (Insn.Store (w, rt, 20, off)));
      1, (let* op = oneofl [ Insn.Amo_add; Amo_and; Amo_or; Amo_xchg;
                             Amo_min; Amo_max ] in
          let* rd = reg in
          let* rt = reg in
          return (Insn.Amo (op, rd, 21, rt)));
      2, (let* c = oneofl all_branch_conds in
          let* rs = reg in
          let* rt = reg in
          let* l = fwd in
          return (Insn.Branch (c, rs, rt, l)));
      1, (let* l = fwd in return (Insn.Jump l));
      1, (let* dp = oneofl [ Insn.Uc; Or; Om; Orm; Ua ] in
          let* cp = oneofl [ Insn.Fixed; Dyn; De ] in
          let* rs = reg in
          let* rt = reg in
          let* l = fwd in
          return (Insn.Xloop ({ dp; cp }, rs, rt, l)));
      1, (let* rd = reg in
          let* rs = reg in
          let* imm = int_range (-100) 100 in
          return (Insn.Xi_addi (rd, rs, imm)));
      1, (let* rd = reg in
          let* rs = reg in
          let* rt = reg in
          return (Insn.Xi_add (rd, rs, rt)));
      1, oneofl [ Insn.Sync; Nop ] ]

let gen_program =
  let open QCheck.Gen in
  let* len = int_range 5 60 in
  let* body =
    (* dependent generation: each insn knows its own pc for forward
       targets *)
    let rec go pc acc =
      if pc = len then return (List.rev acc)
      else
        let* i = gen_insn ~pc ~len in
        go (pc + 1) (i :: acc)
    in
    go 0 []
  in
  (* Seed registers 1..15 with varied immediates, park the scratch
     bases, then the random body, then Halt. *)
  let* seeds =
    let rec go r acc =
      if r > 15 then return (List.rev acc)
      else
        let* imm = int_range (-32768) 32767 in
        go (r + 1) (Insn.Alui (Add, r, 0, imm) :: acc)
    in
    go 1 []
  in
  let prologue =
    seeds
    @ [ Insn.Alui (Add, 20, 0, scratch_base);
        Insn.Alui (Add, 21, 0, scratch_base + 128) ]
  in
  let npro = List.length prologue in
  let shift = Insn.map_label (fun l -> l + npro) in
  return
    { Program.insns =
        Array.of_list (List.map shift prologue
                       @ List.map shift body @ [ Insn.Halt ]);
      symbols = [] }

(* [map_label] on the prologue is a no-op (no labels there) but keeps
   the shift uniform; body targets move past the prologue and [len]
   lands exactly on the Halt. *)

let arb_program =
  QCheck.make gen_program
    ~print:(fun p -> Fmt.str "%a" Program.pp p)

let snapshot (r : Exec.run) mem =
  (r.Exec.dynamic_insns, r.Exec.final.Exec.pc,
   Array.to_list r.Exec.final.Exec.regs,
   Bytes.to_string mem.Memory.data)

let prop_predecode_differential =
  QCheck.Test.make ~name:"predecoded run == reference run" ~count:300
    arb_program
    (fun p ->
       let m1 = Memory.create ~size:4096 () in
       let m2 = Memory.create ~size:4096 () in
       match Exec.run_serial p m1, Exec.run_serial_ref p m2 with
       | Ok r1, Ok r2 -> snapshot r1 m1 = snapshot r2 m2
       | Error _, Error _ -> true
       | _ -> false)

(* Compiled kernels: richer register pressure and real loop structure
   than the random programs, and deterministic. *)
let test_registry_differential () =
  List.iter
    (fun (k : Kernel.t) ->
       let c = Compile.compile k.Kernel.kernel in
       let run exec mem =
         k.Kernel.init c.Compile.array_base mem;
         match exec c.Compile.program mem with
         | Ok r -> r
         | Error stop ->
           Alcotest.failf "%s: %a" k.Kernel.name Exec.pp_stop stop
       in
       let m1 = Memory.create () and m2 = Memory.create () in
       let r1 = run (fun p m -> Exec.run_serial p m) m1 in
       let r2 = run (fun p m -> Exec.run_serial_ref p m) m2 in
       if snapshot r1 m1 <> snapshot r2 m2 then
         Alcotest.failf "%s: predecoded and reference runs differ"
           k.Kernel.name)
    Registry.table2

(* -- concurrent predecode (Domains) ------------------------------------ *)

(* Predecode is called from the sweep worker pool: several domains hit
   the same physically-shared [Program.t] values concurrently.  Each
   domain's memo is DLS-private, but the programs themselves are shared,
   so every domain must observe complete, identical uop arrays — no
   partially-built entries — and repeated calls within a domain must hit
   its memo. *)

let prop_concurrent_predecode =
  QCheck.Test.make ~name:"concurrent predecode agrees across domains"
    ~count:50 arb_program
    (fun p ->
       let want = (Program.predecode_fresh p).Program.uops in
       let domains =
         List.init 4 (fun _ ->
             Domain.spawn (fun () ->
                 let pre1 = Program.predecode p in
                 let pre2 = Program.predecode p in
                 (pre1 == pre2, pre1.Program.uops)))
       in
       List.for_all
         (fun d ->
            let memo_hit, uops = Domain.join d in
            memo_hit && uops = want)
         domains)

let test_concurrent_predecode_registry () =
  let progs =
    List.map
      (fun (k : Kernel.t) ->
         (Compile.compile k.Kernel.kernel).Compile.program)
      Registry.table2
  in
  let expect =
    List.map (fun p -> (Program.predecode_fresh p).Program.uops) progs in
  let results =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            List.map (fun p -> (Program.predecode p).Program.uops) progs))
    |> List.map Domain.join
  in
  List.iter
    (fun got ->
       List.iter2
         (fun g w ->
            if g <> w then
              Alcotest.fail "a domain observed different uop arrays")
         got expect)
    results

(* -- allocation regression -------------------------------------------- *)

let straightline ~iters =
  let b = B.create () in
  B.li b 8 1;
  B.li b 9 iters;
  B.li b 10 0;
  B.label b "top";
  for _ = 0 to 15 do B.add b 10 10 8 done;
  B.addi b 9 9 (-1);
  B.bne b 9 0 "top";
  B.halt b;
  B.assemble b

let test_step_allocation () =
  let p = straightline ~iters:100_000 in
  let pre = Program.predecode p in
  let mem = Memory.create () in
  let iface = Exec.direct_mem mem in
  let h = Exec.create_hart () in
  let ev = Exec.create_event () in
  let insns = ref 0 in
  let a0 = Gc.allocated_bytes () in
  (try
     while true do
       Exec.step pre h iface ev;
       incr insns
     done
   with Exec.Halted -> ());
  let per = (Gc.allocated_bytes () -. a0) /. float_of_int !insns in
  Alcotest.(check bool)
    (Fmt.str "%.4f bytes/insn within budget" per) true (per <= 2.0)

let () =
  Alcotest.run "predecode"
    [ ("operators",
       [ QCheck_alcotest.to_alcotest prop_alu_int_matches;
         QCheck_alcotest.to_alcotest prop_branch_int_matches ]);
      ("differential",
       [ QCheck_alcotest.to_alcotest prop_predecode_differential;
         Alcotest.test_case "registry kernels" `Quick
           test_registry_differential ]);
      ("concurrency",
       [ QCheck_alcotest.to_alcotest prop_concurrent_predecode;
         Alcotest.test_case "registry programs, 4 domains" `Quick
           test_concurrent_predecode_registry ]);
      ("allocation",
       [ Alcotest.test_case "straight-line steps" `Quick
           test_step_allocation ]);
    ]
