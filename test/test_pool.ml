(* Parallel evaluation engine tests: the Domain worker pool (order
   preservation, exception propagation, serial/parallel equivalence of
   whole sweeps including under fault injection) and the
   content-addressed result cache (round-trip, version invalidation,
   warm reruns doing zero simulator executions). *)

module E = Xloops.Experiments
module Run_spec = Xloops.Run_spec
module Run_cache = Xloops.Run_cache
module Pool = Xloops.Pool
module Registry = Xloops.Kernels.Registry
module Config = Xloops.Sim.Config
module Machine = Xloops.Sim.Machine

let kernels = [ "war-uc"; "kmeans-or" ]

(* run_data comparison must ignore the wall clock (the only
   nondeterministic field). *)
let strip (rd : E.run_data) =
  { rd with E.stats = { rd.E.stats with Xloops.Sim.Stats.wall_ns = 0 } }

let tmp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xloops_cache_test_%d_%d" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e3) land 0xFFFFFF))
  in
  d

(* -- Pool ---------------------------------------------------------------- *)

let test_map_order () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int)) "order preserved"
    (List.map (fun x -> x * x) xs)
    (Pool.map ~jobs:4 (fun x -> x * x) xs)

exception Boom of int

let test_map_exception () =
  Alcotest.(check bool) "earliest exception propagates" true
    (try
       ignore
         (Pool.map ~jobs:4
            (fun x -> if x mod 31 = 7 then raise (Boom x) else x)
            (List.init 200 Fun.id));
       false
     with Boom 7 -> true)

let test_default_jobs_env () =
  (* Pool.default_jobs reads $XLOOPS_JOBS; an unset or bad value means
     serial. *)
  Alcotest.(check bool) "default is >= 1" true (Pool.default_jobs () >= 1);
  Alcotest.(check bool) "cores known" true (Pool.available_cores () >= 1)

(* -- Serial vs parallel sweeps ------------------------------------------- *)

let test_parallel_matches_serial () =
  let ks = List.map Registry.find kernels in
  (* Serial reference: the default direct engine. *)
  let serial = List.map (fun k -> E.evaluate k) ks in
  (* Parallel: warm a fresh engine over the full spec plan on 4 domains,
     then assemble. *)
  let engine = E.caching_engine () in
  let plan = List.concat_map E.specs_for ks in
  ignore (Pool.map ~jobs:4 engine.E.run plan);
  let parallel = List.map (fun k -> E.evaluate ~engine k) ks in
  List.iter2
    (fun s p ->
       Alcotest.(check bool)
         (s.E.kernel.name ^ " table2 rows bit-identical") true
         (E.table2_row s = E.table2_row p);
       Alcotest.(check bool)
         (s.E.kernel.name ^ " fig8 points bit-identical") true
         (E.fig8_points s = E.fig8_points p);
       Alcotest.(check bool)
         (s.E.kernel.name ^ " energy bit-identical") true
         ((E.host s "io").spec.energy = (E.host p "io").spec.energy))
    serial parallel

let test_parallel_matches_serial_with_faults () =
  let specs =
    List.map
      (fun name ->
         Run_spec.make ~cfg:Config.io_x ~mode:Machine.Specialized
           ~fault_seed:(42, 8) name)
      kernels
  in
  let serial = List.map Run_spec.execute specs in
  let parallel = Pool.map ~jobs:4 Run_spec.execute specs in
  List.iter2
    (fun s p ->
       Alcotest.(check bool) "faulted run bit-identical" true
         (strip s = strip p);
       Alcotest.(check bool) "plan actually injected" true
         (s.E.stats.faults_injected > 0))
    serial parallel

(* -- Result cache -------------------------------------------------------- *)

let test_cache_roundtrip () =
  let dir = tmp_dir () in
  let spec = Run_spec.make ~cfg:Config.io_x ~mode:Machine.Specialized
      "war-uc" in
  let rd = Run_spec.execute spec in
  let key = Run_spec.cache_key spec in
  let c1 = Run_cache.create ~dir () in
  Run_cache.store_run c1 ~key rd;
  (* A fresh handle on the same directory reloads an equal value. *)
  let c2 = Run_cache.create ~dir () in
  (match Run_cache.find_run c2 ~key with
   | None -> Alcotest.fail "stored run not found"
   | Some rd' ->
     Alcotest.(check bool) "round-trip equal" true (rd = rd'));
  Alcotest.(check int) "hit counted" 1 (Run_cache.hits c2);
  Alcotest.(check int) "store counted" 1 (Run_cache.stores c1)

let test_cache_version_invalidation () =
  let dir = tmp_dir () in
  let spec = Run_spec.make ~cfg:Config.io_x ~mode:Machine.Specialized
      "war-uc" in
  let rd = Run_spec.execute spec in
  let key = Run_spec.cache_key spec in
  let c1 = Run_cache.create ~dir () in
  Run_cache.store_run c1 ~key rd;
  (* Bumping the version makes every stored blob a miss. *)
  let c2 = Run_cache.create ~version:(Run_cache.current_version + 1) ~dir ()
  in
  Alcotest.(check bool) "stale version misses" true
    (Run_cache.find_run c2 ~key = None);
  Alcotest.(check int) "miss counted" 1 (Run_cache.misses c2)

let test_warm_rerun_zero_misses () =
  let dir = tmp_dir () in
  let ks = List.map Registry.find kernels in
  (* Cold sweep fills the cache (runs and kernel metadata)... *)
  let cold = Run_cache.create ~dir () in
  let e1 = E.caching_engine ~cache:cold () in
  let first = List.map (fun k -> E.evaluate ~engine:e1 k) ks in
  Alcotest.(check bool) "cold sweep stored blobs" true
    (Run_cache.stores cold > 0);
  (* ...so a warm rerun with fresh handles simulates nothing... *)
  let warm = Run_cache.create ~dir () in
  let e2 = E.caching_engine ~cache:warm () in
  let second = List.map (fun k -> E.evaluate ~engine:e2 k) ks in
  Alcotest.(check int) "zero misses on warm rerun" 0
    (Run_cache.misses warm);
  Alcotest.(check bool) "every lookup hit" true (Run_cache.hits warm > 0);
  (* ...and produces identical tables, with every run marked a cache
     hit in its stats. *)
  List.iter2
    (fun a b ->
       Alcotest.(check bool) "warm rows identical" true
         (E.table2_row a = E.table2_row b);
       Alcotest.(check int) "run served from cache" 1
         (E.host b "io").spec.stats.cache_hits)
    first second

let () =
  Alcotest.run "pool"
    [ ("pool",
       [ Alcotest.test_case "map order" `Quick test_map_order;
         Alcotest.test_case "map exception" `Quick test_map_exception;
         Alcotest.test_case "default jobs" `Quick test_default_jobs_env ]);
      ("parallel-sweep",
       [ Alcotest.test_case "matches serial" `Quick
           test_parallel_matches_serial;
         Alcotest.test_case "matches serial under faults" `Quick
           test_parallel_matches_serial_with_faults ]);
      ("cache",
       [ Alcotest.test_case "round-trip" `Quick test_cache_roundtrip;
         Alcotest.test_case "version invalidation" `Quick
           test_cache_version_invalidation;
         Alcotest.test_case "warm rerun zero misses" `Quick
           test_warm_rerun_zero_misses ]);
    ]
