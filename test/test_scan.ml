(* Scan-phase analysis tests: MIVT construction, CIR discovery via the
   read-before-write bit-vectors, last-CIR-write placement (including the
   inner-loop re-execution rule), index-step discovery, and every
   fallback reason. *)

open Xloops_isa
module B = Xloops_asm.Builder
module Scan = Xloops_sim.Scan
module Config = Xloops_sim.Config

let uc = { Insn.dp = Uc; cp = Fixed }
let or_ = { Insn.dp = Or; cp = Fixed }

let t0 = Reg.t0 and t1 = Reg.t1 and t2 = Reg.t2 and t3 = Reg.t3
let t4 = Reg.t4 and s0 = 16 and s1 = 17

(* Build a program whose single xloop is returned along with its pc. *)
let build f =
  let b = B.create () in
  f b;
  B.halt b;
  let p = B.assemble b in
  let xpc = ref (-1) in
  Array.iteri (fun pc i -> if Insn.is_xloop i then xpc := pc) p.insns;
  (p, !xpc)

let analyze ?(regs = Array.make 32 0) ?(lpsu = Config.default_lpsu) p xpc =
  Scan.analyze p ~xloop_pc:xpc ~regs ~lpsu

let ok = function
  | Ok info -> info
  | Error e -> Alcotest.failf "unexpected fallback: %a" Scan.pp_fallback e

let test_mivt () =
  let p, xpc = build (fun b ->
      B.label b "body";
      B.lw b t1 t0 0;
      B.xi_addi b t0 t0 4;        (* MIV: pointer, +4 *)
      B.xi_addi b t4 t4 1;        (* index *)
      B.xloop b uc t4 t3 "body")
  in
  let info = ok (analyze p xpc) in
  Alcotest.(check int32) "idx step" 1l info.idx_step;
  (match info.mivs with
   | [ m ] ->
     Alcotest.(check int) "miv reg" t0 m.m_reg;
     Alcotest.(check int32) "miv inc" 4l m.m_inc
   | l -> Alcotest.failf "expected 1 miv, got %d" (List.length l))

let test_xi_add_resolves_register () =
  let regs = Array.make 32 0 in
  regs.(t2) <- 12;   (* loop-invariant increment *)
  let p, xpc = build (fun b ->
      B.label b "body";
      B.xi_add b t0 t0 t2;
      B.xi_addi b t4 t4 1;
      B.xloop b uc t4 t3 "body")
  in
  let info = ok (analyze ~regs p xpc) in
  (match info.mivs with
   | [ m ] -> Alcotest.(check int32) "resolved inc" 12l m.m_inc
   | _ -> Alcotest.fail "expected 1 miv")

let test_plain_addi_index_step () =
  (* A plain add updating the index is fine for uc (no .xi needed). *)
  let p, xpc = build (fun b ->
      B.label b "body";
      B.nop b;
      B.addi b t4 t4 2;
      B.xloop b uc t4 t3 "body")
  in
  let info = ok (analyze p xpc) in
  Alcotest.(check int32) "step 2" 2l info.idx_step

let test_cir_detection () =
  let p, xpc = build (fun b ->
      B.label b "body";
      B.add b s0 s0 t1;   (* s0: read then written -> CIR *)
      B.add b t2 t1 t1;   (* t2: written first -> scratch *)
      B.add b t2 t2 s0;
      B.xi_addi b t4 t4 1;
      B.xloop b or_ t4 t3 "body")
  in
  let info = ok (analyze p xpc) in
  (match info.cirs with
   | [ c ] ->
     Alcotest.(check int) "cir reg" s0 c.c_reg;
     Alcotest.(check int) "last write = its add" 0 c.c_last_write_pc
   | l -> Alcotest.failf "expected 1 cir, got %d" (List.length l))

let test_uc_has_no_cirs () =
  let p, xpc = build (fun b ->
      B.label b "body";
      B.add b s0 s0 t1;
      B.xi_addi b t4 t4 1;
      B.xloop b uc t4 t3 "body")
  in
  Alcotest.(check int) "no cirs for uc" 0
    (List.length (ok (analyze p xpc)).cirs)

let test_cir_last_write_in_inner_loop_disabled () =
  (* A CIR whose last write sits inside an inner loop must not forward
     early (the write re-executes); the scan clears the last-write bit. *)
  let p, xpc = build (fun b ->
      B.label b "body";
      B.add b s0 s0 t1;          (* CIR read *)
      B.label b "inner";
      B.add b s0 s0 t2;          (* CIR write inside the inner loop *)
      B.addi b t1 t1 1;
      B.blt b t1 t2 "inner";
      B.xi_addi b t4 t4 1;
      B.xloop b or_ t4 t3 "body")
  in
  let info = ok (analyze p xpc) in
  (match List.find_opt (fun c -> c.Scan.c_reg = s0) info.cirs with
   | Some c -> Alcotest.(check int) "no early forward" (-1) c.c_last_write_pc
   | None -> Alcotest.fail "s0 should be a CIR")

let test_bound_reg_not_cir () =
  (* A dynamic bound register is written and read but handled by the
     LMU, never the CIBs. *)
  let p, xpc = build (fun b ->
      B.li b s1 0x4000;
      B.label b "body";
      B.add b s0 s0 t3;           (* reads bound-reg t3: fine *)
      B.lw b t3 s1 0;             (* bound reload *)
      B.xi_addi b t4 t4 1;
      B.xloop b { Insn.dp = Or; cp = Dyn } t4 t3 "body")
  in
  let info = ok (analyze p xpc) in
  Alcotest.(check bool) "t3 excluded" true
    (not (List.exists (fun c -> c.Scan.c_reg = t3) info.cirs))

(* -- fallbacks ---------------------------------------------------------- *)

let expect_fallback name p xpc pred =
  match analyze p xpc with
  | Ok _ -> Alcotest.failf "%s: expected fallback" name
  | Error e ->
    Alcotest.(check bool) name true (pred e)

let test_fallback_body_too_large () =
  let p, xpc = build (fun b ->
      B.label b "body";
      for _ = 1 to 200 do B.nop b done;
      B.xi_addi b t4 t4 1;
      B.xloop b uc t4 t3 "body")
  in
  expect_fallback "too large" p xpc
    (function Scan.Body_too_large n -> n = 201 | _ -> false)

let test_fallback_pattern_unsupported () =
  let p, xpc = build (fun b ->
      B.label b "body";
      B.xi_addi b t4 t4 1;
      B.xloop b { Insn.dp = Om; cp = Fixed } t4 t3 "body")
  in
  match Scan.analyze p ~xloop_pc:xpc ~regs:(Array.make 32 0)
          ~lpsu:{ Config.default_lpsu with supported = [ Insn.Uc ] } with
  | Error (Scan.Pattern_unsupported Insn.Om) -> ()
  | _ -> Alcotest.fail "expected pattern fallback"

let test_fallback_call () =
  let p, xpc = build (fun b ->
      B.label b "body";
      B.jal b "body";
      B.xi_addi b t4 t4 1;
      B.xloop b uc t4 t3 "body")
  in
  expect_fallback "call" p xpc (function Scan.Has_call -> true | _ -> false)

let test_fallback_bad_step () =
  let p, xpc = build (fun b ->
      B.label b "body";
      B.nop b;   (* index never updated *)
      B.xloop b uc t4 t3 "body")
  in
  expect_fallback "no step" p xpc
    (function Scan.Bad_index_step -> true | _ -> false)

let test_fallback_negative_step () =
  let p, xpc = build (fun b ->
      B.label b "body";
      B.addi b t4 t4 (-1);
      B.xloop b uc t4 t3 "body")
  in
  expect_fallback "negative step" p xpc
    (function Scan.Bad_index_step -> true | _ -> false)

let test_speculative_patterns () =
  let spec dp = Scan.is_speculative_pattern { Insn.dp; cp = Fixed } in
  Alcotest.(check bool) "om" true (spec Insn.Om);
  Alcotest.(check bool) "orm" true (spec Insn.Orm);
  Alcotest.(check bool) "ua" true (spec Insn.Ua);
  Alcotest.(check bool) "uc" false (spec Insn.Uc);
  Alcotest.(check bool) "or" false (spec Insn.Or);
  let cirs dp = Scan.has_cirs { Insn.dp; cp = Fixed } in
  Alcotest.(check bool) "or has cirs" true (cirs Insn.Or);
  Alcotest.(check bool) "orm has cirs" true (cirs Insn.Orm);
  Alcotest.(check bool) "om no cirs" false (cirs Insn.Om)

let () =
  Alcotest.run "scan"
    [ ("mivt",
       [ Alcotest.test_case "xi_addi" `Quick test_mivt;
         Alcotest.test_case "xi_add register" `Quick
           test_xi_add_resolves_register;
         Alcotest.test_case "plain addi step" `Quick
           test_plain_addi_index_step ]);
      ("cir",
       [ Alcotest.test_case "detection" `Quick test_cir_detection;
         Alcotest.test_case "uc has none" `Quick test_uc_has_no_cirs;
         Alcotest.test_case "inner-loop write" `Quick
           test_cir_last_write_in_inner_loop_disabled;
         Alcotest.test_case "bound excluded" `Quick test_bound_reg_not_cir ]);
      ("fallback",
       [ Alcotest.test_case "body too large" `Quick
           test_fallback_body_too_large;
         Alcotest.test_case "pattern" `Quick test_fallback_pattern_unsupported;
         Alcotest.test_case "call" `Quick test_fallback_call;
         Alcotest.test_case "no step" `Quick test_fallback_bad_step;
         Alcotest.test_case "negative step" `Quick
           test_fallback_negative_step ]);
      ("classes",
       [ Alcotest.test_case "speculative/cir classes" `Quick
           test_speculative_patterns ]);
    ]
