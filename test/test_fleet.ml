(* Fleet-tier tests: the v2 blob codec (round-trip, tamper fuzz,
   compression threshold boundary), digest-prefix shard routing (every
   digest routes to exactly one shard; malformed descriptors rejected),
   the mmap'd shared cache index (single-handle semantics, reopen,
   sweeps, and a multi-domain torture run — concurrent writers and
   lock-free readers must never observe a torn record), two Run_cache
   handles coordinating through one index (adoption, healing), the
   private-cache size reaper, address-grammar rejection in Cli_common,
   and the balancer proxy end to end — result equality with local
   execution, fleet stats summing, dead-shard failover, and the
   no-failover transient-error path. *)

module P = Xloops_service.Protocol
module Codec = Xloops_service.Codec
module Shard = Xloops_service.Shard
module Proxy = Xloops_service.Proxy
module Server = Xloops_service.Server
module Client = Xloops_service.Client
module Run_spec = Xloops.Run_spec
module Run_cache = Xloops.Run_cache
module Cache_index = Xloops.Cache_index
module Digest_hex = Xloops.Digest_hex
module Config = Xloops.Sim.Config
module Machine = Xloops.Sim.Machine
module Stats = Xloops.Sim.Stats

let tmp_dir () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "xloops_fleet_test_%d_%d" (Unix.getpid ())
       (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF))

let strip (rd : Run_spec.run_data) =
  { rd with
    Run_spec.stats =
      { rd.Run_spec.stats with Stats.wall_ns = 0; cache_hits = 0;
        cache_misses = 0 } }

let spec ?fuel ?(cfg = Config.io_x) ?(mode = Machine.Specialized) name =
  Run_spec.make ?fuel ~cfg ~mode name

let spec_pool =
  [ spec "war-uc";
    spec ~mode:Machine.Traditional "war-uc";
    spec ~cfg:Config.ooo2_x ~mode:Machine.Adaptive "war-uc";
    spec ~fuel:123_456 ~cfg:Config.io ~mode:Machine.Traditional "kmeans-or" ]

let key_of i = Digest_hex.of_digest (Digest.string (Printf.sprintf "k%d" i))

let sample_rd = lazy (Run_spec.execute (List.hd spec_pool))

(* -- Codec --------------------------------------------------------------- *)

let roundtrip s =
  match Codec.decompress (Codec.compress s) with
  | Ok s' -> String.equal s s'
  | Error e -> QCheck.Test.fail_reportf "decompress: %s" e

let test_codec_basic () =
  List.iter
    (fun s ->
       Alcotest.(check bool)
         (Printf.sprintf "round-trip %d bytes" (String.length s)) true
         (roundtrip s))
    [ ""; "a"; "abc"; String.make 100_000 'x';
      String.concat "" (List.init 500 (fun i -> Printf.sprintf "row %d;" i));
      String.init 10_000 (fun i -> Char.chr (i * 7919 land 0xFF));
      Marshal.to_string (Lazy.force sample_rd) [] ];
  (* Marshalled run_data is what actually crosses the wire — it must
     compress, or the v2 'z' path never pays. *)
  let blob = Marshal.to_string (Lazy.force sample_rd) [] in
  Alcotest.(check bool) "run_data blob compresses" true
    (String.length (Codec.compress blob) < String.length blob);
  let repetitive = String.make 65536 'q' in
  Alcotest.(check bool) "repetitive input shrinks a lot" true
    (String.length (Codec.compress repetitive) < 65536 / 4)

(* Mix of random, repetitive and constant inputs — the interesting
   compression regimes. *)
let gen_blob =
  QCheck.Gen.(
    oneof
      [ string_size (int_bound 2000);
        map2
          (fun s n -> String.concat "" (List.init (n + 1) (fun _ -> s)))
          (string_size (int_bound 40)) (int_bound 100);
        map (fun n -> String.make n 'x') (int_bound 8192) ])

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec round-trips" ~count:300
    (QCheck.make gen_blob) roundtrip

(* Decompress consumes network bytes: any mutation must produce
   [Ok]/[Error], never an exception or a crash. *)
let prop_codec_tamper =
  QCheck.Test.make ~name:"decompress never raises on tampered input"
    ~count:300
    QCheck.(triple (make gen_blob) small_nat small_nat)
    (fun (s, pos, byte) ->
       let c = Bytes.of_string (Codec.compress s) in
       if Bytes.length c > 0 then
         Bytes.set c (pos mod Bytes.length c) (Char.chr (byte land 0xFF));
       (match Codec.decompress (Bytes.to_string c) with
        | Ok _ | Error _ -> ());
       true)

let test_codec_truncation () =
  let c = Codec.compress (String.concat "" (List.init 300 string_of_int)) in
  for k = 0 to String.length c - 1 do
    match Codec.decompress (String.sub c 0 k) with
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded cleanly" k
    | Error _ -> ()
  done;
  (* ...and bytes past the end of a valid stream are rejected too. *)
  match Codec.decompress (c ^ "\x00") with
  | Ok _ -> Alcotest.fail "trailing byte accepted"
  | Error _ -> ()

(* The encoder compresses exactly when the blob reaches the threshold
   (and compression pays).  Binary-search the cutoff and check both
   sides of the boundary. *)
let test_codec_threshold_boundary () =
  let rd = Lazy.force sample_rd in
  let sp = List.hd spec_pool in
  let resp = P.Result { index = 0; digest = Run_spec.digest sp;
                        outcome = Ok rd } in
  let plain = P.encode_response ~version:1 resp in
  let z th = P.encode_response ~version:2 ~compress_threshold:th resp in
  Alcotest.(check bool) "huge threshold ships plain bytes" true
    (String.equal (z max_int) plain);
  Alcotest.(check bool) "v1 encoding never compresses" true
    (String.equal (P.encode_response ~version:1 ~compress_threshold:1 resp)
       plain);
  let compresses th = not (String.equal (z th) plain) in
  Alcotest.(check bool) "tiny threshold compresses" true (compresses 1);
  Alcotest.(check bool) "compressed frame is smaller" true
    (String.length (z 1) < String.length plain);
  (* smallest threshold that does NOT compress = blob length + 1 *)
  let rec cutoff lo hi =
    if hi - lo = 1 then hi
    else
      let mid = lo + ((hi - lo) / 2) in
      if compresses mid then cutoff mid hi else cutoff lo mid
  in
  let cut = cutoff 1 max_int in
  Alcotest.(check bool) "compresses at blob length" true (compresses (cut - 1));
  Alcotest.(check bool) "plain one past blob length" true
    (not (compresses cut));
  (* Both spellings decode to the same response. *)
  (match P.decode_response (z 1) with
   | Error e -> Alcotest.failf "decode compressed: %s" e
   | Ok r' ->
     Alcotest.(check bool) "compressed decodes to the v1 value" true
       (String.equal (P.encode_response ~version:1 r') plain))

(* -- Shard routing ------------------------------------------------------- *)

let addr s =
  match P.parse_addr s with
  | Ok a -> a
  | Error e -> Alcotest.failf "addr %S: %s" s e

let prefix_byte d = int_of_string ("0x" ^ Digest_hex.shard d)

(* Exactly one shard owns each of the 256 prefixes — checked directly
   on the descriptor, with no digests involved. *)
let check_partition name t =
  let ranges = Shard.shards t in
  for b = 0 to 0xFF do
    let owners =
      Array.to_list ranges
      |> List.filter (fun s -> s.Shard.lo <= b && b <= s.Shard.hi)
      |> List.length
    in
    if owners <> 1 then
      Alcotest.failf "%s: prefix %02x owned by %d shards" name b owners
  done

let test_shard_partition () =
  check_partition "even/1" (Shard.even [ addr "tcp:a:1" ]);
  check_partition "even/2" (Shard.even [ addr "tcp:a:1"; addr "tcp:b:2" ]);
  check_partition "even/3"
    (Shard.even [ addr "tcp:a:1"; addr "tcp:b:2"; addr "tcp:c:3" ]);
  check_partition "even/7"
    (Shard.even (List.init 7 (fun i -> addr (Printf.sprintf "tcp:h:%d" i))));
  match
    Shard.of_specs
      [ "80-ff=tcp:b:2"; "00-10=unix:/a.sock"; "11-7f=tcp:a:1" ]
  with
  | Error e -> Alcotest.failf "valid shard map rejected: %s" e
  | Ok t -> check_partition "of_specs" t

let fleet3 =
  lazy (Shard.even [ addr "tcp:a:1"; addr "tcp:b:2"; addr "tcp:c:3" ])

let prop_shard_route =
  QCheck.Test.make ~name:"every digest routes to exactly one shard"
    ~count:500 QCheck.small_nat
    (fun n ->
       let t = Lazy.force fleet3 in
       let d = Digest_hex.of_digest (Digest.string (string_of_int n)) in
       let i = Shard.route t d in
       let ranges = Shard.shards t in
       if i < 0 || i >= Array.length ranges then
         QCheck.Test.fail_reportf "route out of range: %d" i;
       let s = ranges.(i) in
       let b = prefix_byte d in
       if not (s.Shard.lo <= b && b <= s.Shard.hi) then
         QCheck.Test.fail_reportf "prefix %02x routed outside %02x-%02x" b
           s.Shard.lo s.Shard.hi;
       (* routing agrees with the cache's shard subdirectory *)
       String.equal (Digest_hex.shard d) (Printf.sprintf "%02x" b))

let test_shard_rejections () =
  List.iter
    (fun (what, specs) ->
       match Shard.of_specs specs with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "%s accepted" what)
    [ ("empty map", []);
      ("gap", [ "00-7e=tcp:a:1"; "80-ff=tcp:b:2" ]);
      ("overlap", [ "00-80=tcp:a:1"; "7f-ff=tcp:b:2" ]);
      ("reversed range", [ "7f-00=tcp:a:1"; "80-ff=tcp:b:2" ]);
      ("bad hex", [ "0g-ff=tcp:a:1" ]);
      ("uppercase hex", [ "00-FF=tcp:a:1" ]);
      ("short prefix", [ "0-ff=tcp:a:1" ]);
      ("missing addr", [ "00-ff" ]);
      ("bad addr", [ "00-ff=tcp:hostonly" ]) ]

(* -- Cache_index: single handle ------------------------------------------ *)

let no_evict ~key:_ ~tag:_ = Alcotest.fail "unexpected eviction"

let test_index_basic () =
  let path = Filename.concat (tmp_dir ()) "index" in
  let t = Cache_index.openf ~slots:64 path in
  let k1 = key_of 1 and k2 = key_of 2 in
  Alcotest.(check bool) "fresh index misses" true
    (Cache_index.find t ~key:k1 ~tag:'r' = None);
  Cache_index.insert t ~key:k1 ~tag:'r' ~size:100 ~evict:no_evict;
  Cache_index.insert t ~key:k2 ~tag:'m' ~size:50 ~evict:no_evict;
  let e =
    match Cache_index.find t ~key:k1 ~tag:'r' with
    | Some e -> e
    | None -> Alcotest.fail "inserted key not found"
  in
  Alcotest.(check int) "size recorded" 100 e.Cache_index.e_size;
  Alcotest.(check bool) "entry validates" true
    (Cache_index.still_valid t ~key:k1 ~tag:'r' e);
  Alcotest.(check bool) "tag is part of the key" true
    (Cache_index.find t ~key:k1 ~tag:'m' = None);
  (* idempotent: same key+tag again does not double-account *)
  Cache_index.insert t ~key:k1 ~tag:'r' ~size:100 ~evict:no_evict;
  Alcotest.(check int) "re-insert keeps live count" 2
    (Cache_index.live_entries t);
  Alcotest.(check int) "re-insert keeps used bytes" 150
    (Cache_index.used_bytes t);
  let gen0 = Cache_index.generation t in
  Cache_index.delete t ~key:k2 ~tag:'m';
  Alcotest.(check bool) "deleted key misses" true
    (Cache_index.find t ~key:k2 ~tag:'m' = None);
  Alcotest.(check int) "delete releases bytes" 100 (Cache_index.used_bytes t);
  Alcotest.(check bool) "delete bumps the generation" true
    (Cache_index.generation t > gen0);
  Alcotest.(check bool) "stale entry no longer validates" true
    (not (Cache_index.still_valid t ~key:k1 ~tag:'r'
            { e with Cache_index.e_gen = -1 }));
  Cache_index.close t;
  (* Reopen: contents and geometry persist ([slots] only applies at
     creation). *)
  let t' = Cache_index.openf ~slots:4096 path in
  Alcotest.(check int) "geometry kept on reopen" 64 (Cache_index.slots t');
  Alcotest.(check bool) "entries persist across reopen" true
    (Cache_index.find t' ~key:k1 ~tag:'r' <> None);
  Cache_index.close t';
  match Cache_index.openf (Filename.concat (tmp_dir ()) "not-an-index") with
  | exception _ -> Alcotest.fail "fresh path must create cleanly"
  | t'' ->
    Cache_index.close t'';
    (* a non-index file of plausible size must be refused *)
    let bogus = Filename.concat (tmp_dir ()) "bogus" in
    (match Unix.mkdir (Filename.dirname bogus) 0o755 with
     | () -> () | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let oc = open_out_bin bogus in
    output_string oc (String.make 8192 'j');
    close_out oc;
    (match Cache_index.openf bogus with
     | exception Failure _ -> ()
     | _ -> Alcotest.fail "garbage file opened as an index")

let test_index_load_factor_sweep () =
  let path = Filename.concat (tmp_dir ()) "index" in
  let t = Cache_index.openf ~slots:64 path in
  let evicted = ref 0 in
  for i = 0 to 99 do
    Cache_index.insert t ~key:(key_of i) ~tag:'r' ~size:10
      ~evict:(fun ~key:_ ~tag:_ -> incr evicted)
  done;
  Alcotest.(check bool) "sweep kept the table under the load bound" true
    (Cache_index.live_entries t <= 64 * 7 / 8);
  Alcotest.(check bool) "victims were evicted" true (!evicted > 0);
  Alcotest.(check int) "eviction counter matches callbacks" !evicted
    (Cache_index.evictions t);
  (* every surviving entry still validates with its true size *)
  for i = 0 to 99 do
    match Cache_index.find t ~key:(key_of i) ~tag:'r' with
    | None -> ()
    | Some e -> Alcotest.(check int) "surviving size" 10 e.Cache_index.e_size
  done;
  Cache_index.close t

let test_index_byte_limit_sweep () =
  let path = Filename.concat (tmp_dir ()) "index" in
  let t = Cache_index.openf ~slots:1024 ~limit_mb:1 path in
  let evicted = ref 0 in
  for i = 0 to 19 do
    (* 20 × 100 KB = ~2 MiB against a 1 MiB bound *)
    Cache_index.insert t ~key:(key_of i) ~tag:'r' ~size:100_000
      ~evict:(fun ~key:_ ~tag:_ -> incr evicted)
  done;
  Alcotest.(check bool) "accounted bytes under the limit" true
    (Cache_index.used_bytes t <= Cache_index.limit_bytes t);
  Alcotest.(check bool) "byte pressure evicted" true (!evicted > 0);
  Alcotest.(check bool) "some entries survived" true
    (Cache_index.live_entries t > 0);
  Cache_index.close t

(* -- Cache_index: concurrent torture ------------------------------------- *)

(* Two writer domains hammer inserts (with the byte bound forcing
   constant eviction churn) while reader domains probe lock-free.  A
   reader must only ever see a miss or a checksum-valid record whose
   size is the one the key was inserted with — a torn record, a
   half-swept slot, or a stale-generation ghost would fail the size
   check. *)
let test_index_torture () =
  let path = Filename.concat (tmp_dir ()) "index" in
  let t = Cache_index.openf ~slots:1024 ~limit_mb:1 path in
  let nkeys = 1500 in
  let size_of i = 4096 + (i mod 5) * 512 in
  let bad = Atomic.make 0 in
  let evictions = Atomic.make 0 in
  let writer salt () =
    let state = ref (salt * 2654435761) in
    for _ = 1 to 3000 do
      state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
      let i = !state mod nkeys in
      Cache_index.insert t ~key:(key_of i) ~tag:'r' ~size:(size_of i)
        ~evict:(fun ~key:_ ~tag:_ -> Atomic.incr evictions)
    done
  in
  let reader salt () =
    let state = ref (salt * 48271) in
    for _ = 1 to 30_000 do
      state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
      let i = !state mod nkeys in
      match Cache_index.find t ~key:(key_of i) ~tag:'r' with
      | None -> ()
      | Some e -> if e.Cache_index.e_size <> size_of i then Atomic.incr bad
    done
  in
  let domains =
    [ Domain.spawn (writer 1); Domain.spawn (writer 2);
      Domain.spawn (reader 3); Domain.spawn (reader 4);
      Domain.spawn (reader 5) ]
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no torn or stale reads" 0 (Atomic.get bad);
  Alcotest.(check bool) "eviction churn happened" true
    (Atomic.get evictions > 0);
  Alcotest.(check bool) "quiescent bytes under the limit" true
    (Cache_index.used_bytes t <= Cache_index.limit_bytes t);
  (* quiescent state is fully self-consistent *)
  for i = 0 to nkeys - 1 do
    match Cache_index.find t ~key:(key_of i) ~tag:'r' with
    | None -> ()
    | Some e ->
      Alcotest.(check int) "final size" (size_of i) e.Cache_index.e_size;
      Alcotest.(check bool) "final entry validates" true
        (Cache_index.still_valid t ~key:(key_of i) ~tag:'r' e)
  done;
  Cache_index.close t

(* -- Run_cache over a shared index --------------------------------------- *)

let rec walk acc p =
  if Sys.is_directory p then
    Array.fold_left
      (fun acc f -> walk acc (Filename.concat p f))
      acc (Sys.readdir p)
  else p :: acc

let run_blobs dir =
  List.filter (fun p -> Filename.check_suffix p ".run") (walk [] dir)

let test_shared_cache_two_handles () =
  let dir = tmp_dir () in
  let idx = Cache_index.openf (Filename.concat dir "index") in
  let a = Run_cache.create ~dir ~index:idx () in
  let b = Run_cache.create ~dir ~index:idx () in
  let rd = Lazy.force sample_rd in
  let k = key_of 100 in
  Run_cache.store_run a ~key:k rd;
  Alcotest.(check int) "store registered in the index" 1
    (Cache_index.live_entries idx);
  (match Run_cache.find_run b ~key:k with
   | Some rd' ->
     Alcotest.(check bool) "second handle reads the first's store" true
       (strip rd' = strip rd)
   | None -> Alcotest.fail "shared store invisible to second handle");
  Alcotest.(check int) "hit counted on the reading handle" 1
    (Run_cache.hits b);
  (* Healing: delete the blob behind the index's back — the index entry
     is live but the store is gone, so the lookup must miss and drop
     the entry rather than error. *)
  (match run_blobs dir with
   | [ blob ] -> Sys.remove blob
   | l -> Alcotest.failf "expected exactly one .run blob, found %d"
            (List.length l));
  Alcotest.(check bool) "vanished blob reads as a miss" true
    (Run_cache.find_run b ~key:k = None);
  Alcotest.(check int) "dangling index entry healed away" 0
    (Cache_index.live_entries idx);
  Cache_index.close idx

let test_shared_cache_adoption () =
  let dir = tmp_dir () in
  let plain = Run_cache.create ~dir () in
  let k = key_of 200 in
  Run_cache.store_run plain ~key:k (Lazy.force sample_rd);
  (* A fresh index over a dir with pre-existing blobs: the first lookup
     falls back to disk and adopts the blob into the index. *)
  let idx = Cache_index.openf (Filename.concat dir "index") in
  let c = Run_cache.create ~dir ~index:idx () in
  Alcotest.(check int) "index starts empty" 0 (Cache_index.live_entries idx);
  Alcotest.(check bool) "pre-existing blob found through fallback" true
    (Run_cache.find_run c ~key:k <> None);
  Alcotest.(check int) "blob adopted into the index" 1
    (Cache_index.live_entries idx);
  Alcotest.(check bool) "adopted entry serves the next lookup" true
    (Run_cache.find_run c ~key:k <> None);
  Cache_index.close idx

(* Eviction under byte pressure must only ever delete whole blobs —
   whatever survives still round-trips with a clean checksum. *)
let test_shared_cache_eviction_integrity () =
  let dir = tmp_dir () in
  let idx = Cache_index.openf ~slots:64 (Filename.concat dir "index") in
  let c = Run_cache.create ~dir ~index:idx () in
  let rd = Lazy.force sample_rd in
  let n = 120 in
  for i = 0 to n - 1 do
    Run_cache.store_run c ~key:(key_of i) rd
  done;
  Alcotest.(check bool) "load factor forced evictions" true
    (Run_cache.evictions c > 0);
  let served = ref 0 in
  for i = 0 to n - 1 do
    match Run_cache.find_run c ~key:(key_of i) with
    | None -> ()
    | Some rd' ->
      incr served;
      if strip rd' <> strip rd then Alcotest.failf "blob %d corrupted" i
  done;
  Alcotest.(check bool) "survivors still served" true (!served > 0);
  Alcotest.(check int) "no integrity failures" 0 (Run_cache.corrupt c);
  Alcotest.(check int) "index live matches served blobs" !served
    (Cache_index.live_entries idx);
  Cache_index.close idx

let test_reap_over_limit () =
  let dir = tmp_dir () in
  let seed = Run_cache.create ~dir () in
  let rd = Lazy.force sample_rd in
  let n = 8 in
  for i = 0 to n - 1 do
    Run_cache.store_run seed ~key:(key_of i) rd
  done;
  let size_of p = (Unix.stat p).Unix.st_size in
  let total = List.fold_left (fun a p -> a + size_of p) 0 (run_blobs dir) in
  let limit = total / 2 in
  let c = Run_cache.create ~dir ~limit_bytes:limit () in
  let removed = Run_cache.reap_over_limit c in
  Alcotest.(check bool) "over-limit blobs reaped" true (removed > 0);
  Alcotest.(check int) "reaps counted as evictions" removed
    (Run_cache.evictions c);
  let blobs = run_blobs dir in
  Alcotest.(check int) "removed + surviving = stored" n
    (removed + List.length blobs);
  Alcotest.(check bool) "survivors fit the limit" true
    (List.fold_left (fun a p -> a + size_of p) 0 blobs <= limit);
  (* a second reap is a no-op; so is one without a limit *)
  Alcotest.(check int) "reap is idempotent" 0 (Run_cache.reap_over_limit c);
  Alcotest.(check int) "no limit, no reap" 0
    (Run_cache.reap_over_limit (Run_cache.create ~dir ()))

(* -- Cli_common.parse_addr ----------------------------------------------- *)

let test_cli_parse_addr () =
  let ok s exp =
    match Cli_common.parse_addr s with
    | Ok a -> Alcotest.(check string) s exp (Fmt.str "%a" Cli_common.pp_addr a)
    | Error e -> Alcotest.failf "parse_addr %S: %s" s e
  in
  ok "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  ok "tcp:10.0.0.1:7501" "tcp:10.0.0.1:7501";
  ok "localhost:0" "tcp:localhost:0";
  ok "tcp:host:65535" "tcp:host:65535";
  List.iter
    (fun s ->
       match Cli_common.parse_addr s with
       | Error _ -> ()
       | Ok a ->
         Alcotest.failf "%S accepted as %s" s (Fmt.str "%a" Cli_common.pp_addr a))
    [ ""; "noport"; "unix:"; "tcp:"; "tcp:host"; "tcp:host:notaport";
      "tcp::7501"; "host:-1"; "host:65536"; "host:"; ":7501" ]

(* -- The proxy, end to end ----------------------------------------------- *)

let start_server ?cache () =
  Server.start
    (Server.config ~addr:(P.Tcp ("127.0.0.1", 0)) ?cache ~banner:"shard" ())

(* A port with nothing listening: bind, read the port back, close. *)
let dead_addr () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  P.Tcp ("127.0.0.1", port)

let connect addr =
  match Client.connect addr with
  | Ok s -> s
  | Error e -> Alcotest.failf "connect: %a" Client.pp_connect_error e

let submit_all s specs =
  let results = Array.make (List.length specs) None in
  match
    Client.submit s
      ~on_result:(fun ~index ~digest:_ r -> results.(index) <- Some r)
      specs
  with
  | Ok delivered -> (delivered, results)
  | Error (Client.Submit_rejected e) ->
    Alcotest.failf "batch rejected: %a" P.pp_error e
  | Error (Client.Submit_conn m) -> Alcotest.failf "connection died: %s" m

let check_matches_local plan results =
  List.iteri
    (fun i sp ->
       match results.(i), Run_spec.execute_result sp with
       | Some (Ok rd), Ok local ->
         Alcotest.(check bool) (Printf.sprintf "spec %d equals local" i) true
           (strip rd = strip local)
       | Some (Error e), Error f ->
         Alcotest.(check string) (Printf.sprintf "spec %d failure code" i)
           (P.error_code_name (P.error_of_failure f).P.code)
           (P.error_code_name e.P.code)
       | Some (Ok _), Error _ | Some (Error _), Ok _ ->
         Alcotest.failf "spec %d: proxy and local disagree" i
       | None, _ -> Alcotest.failf "spec %d never answered" i)
    plan

let test_proxy_matches_local () =
  let s1 = start_server () and s2 = start_server () in
  let shards = Shard.even [ Server.bound_addr s1; Server.bound_addr s2 ] in
  let px =
    Proxy.start
      (Proxy.config ~addr:(P.Tcp ("127.0.0.1", 0)) ~shards ~chunk:2
         ~banner:"px" ())
  in
  Fun.protect
    ~finally:(fun () -> Proxy.stop px; Server.stop s1; Server.stop s2)
    (fun () ->
       (* a failing spec and a duplicate ride along: failure frames and
          dedupe must survive the fan-out/merge *)
       let plan = spec_pool @ [ spec ~fuel:1 "war-uc"; List.hd spec_pool ] in
       let s = connect (Proxy.bound_addr px) in
       let delivered, results = submit_all s plan in
       Alcotest.(check int) "every index answered" (List.length plan)
         delivered;
       check_matches_local plan results;
       (* fleet stats: the shards' counters summed (1 worker each) *)
       (match Client.stats s with
        | Error _ -> Alcotest.fail "fleet stats failed"
        | Ok st ->
          Alcotest.(check int) "workers summed across fleet" 2 st.P.workers;
          Alcotest.(check int) "per-worker rows concatenated" 2
            (List.length st.P.per_worker);
          Alcotest.(check bool) "fleet completed the batch" true
            (st.P.completed >= 5));
       Client.close s)

let test_proxy_failover () =
  let s1 = start_server () in
  let dir = tmp_dir () in
  let cache = Run_cache.create ~dir () in
  let shards = Shard.even [ Server.bound_addr s1; dead_addr () ] in
  let px =
    Proxy.start
      (Proxy.config ~addr:(P.Tcp ("127.0.0.1", 0)) ~shards ~max_attempts:2
         ~failover:true ~cache ~banner:"px" ())
  in
  Fun.protect
    ~finally:(fun () -> Proxy.stop px; Server.stop s1)
    (fun () ->
       let plan = spec_pool in
       let s = connect (Proxy.bound_addr px) in
       let delivered, results = submit_all s plan in
       Client.close s;
       Alcotest.(check int) "dead shard answered via failover"
         (List.length plan) delivered;
       check_matches_local plan results;
       (* the dead shard's specs went through the proxy's own cache *)
       Alcotest.(check bool) "failover populated the local cache" true
         (Run_cache.stores cache > 0))

let test_proxy_no_failover () =
  let s1 = start_server () in
  let dead = dead_addr () in
  let shards = Shard.even [ Server.bound_addr s1; dead ] in
  let px =
    Proxy.start
      (Proxy.config ~addr:(P.Tcp ("127.0.0.1", 0)) ~shards ~max_attempts:2
         ~failover:false ~banner:"px" ())
  in
  Fun.protect
    ~finally:(fun () -> Proxy.stop px; Server.stop s1)
    (fun () ->
       let plan = spec_pool in
       let s = connect (Proxy.bound_addr px) in
       let delivered, results = submit_all s plan in
       Client.close s;
       Alcotest.(check int) "every index answered" (List.length plan)
         delivered;
       (* routing is deterministic: exactly the dead shard's specs fail,
          and they fail transiently (the client may retry) *)
       let dead_count = ref 0 in
       List.iteri
         (fun i sp ->
            let home = Shard.route shards (Run_spec.digest sp) in
            let expect_dead =
              (Shard.shards shards).(home).Shard.addr = dead
            in
            match results.(i) with
            | Some (Error e) when expect_dead ->
              incr dead_count;
              Alcotest.(check string)
                (Printf.sprintf "spec %d error code" i) "io"
                (P.error_code_name e.P.code);
              Alcotest.(check bool) (Printf.sprintf "spec %d transient" i)
                true e.P.transient
            | Some (Ok _) when not expect_dead -> ()
            | Some (Ok _) ->
              Alcotest.failf "spec %d: dead shard produced a result" i
            | Some (Error e) ->
              Alcotest.failf "spec %d: live shard failed: %a" i P.pp_error e
            | None -> Alcotest.failf "spec %d never answered" i)
         plan;
       (* the pool's digests are fixed: at least one lands on each half *)
       Alcotest.(check bool) "plan exercised the dead shard" true
         (!dead_count > 0 && !dead_count < List.length plan))

let () =
  Alcotest.run "fleet"
    [ ("codec",
       [ Alcotest.test_case "round-trip corpus" `Quick test_codec_basic;
         Alcotest.test_case "truncation rejected" `Quick
           test_codec_truncation;
         Alcotest.test_case "threshold boundary" `Quick
           test_codec_threshold_boundary;
         QCheck_alcotest.to_alcotest prop_codec_roundtrip;
         QCheck_alcotest.to_alcotest prop_codec_tamper ]);
      ("shard",
       [ Alcotest.test_case "partition of 00..ff" `Quick
           test_shard_partition;
         Alcotest.test_case "malformed descriptors" `Quick
           test_shard_rejections;
         QCheck_alcotest.to_alcotest prop_shard_route ]);
      ("cache-index",
       [ Alcotest.test_case "basic operations" `Quick test_index_basic;
         Alcotest.test_case "load-factor sweep" `Quick
           test_index_load_factor_sweep;
         Alcotest.test_case "byte-limit sweep" `Quick
           test_index_byte_limit_sweep;
         Alcotest.test_case "concurrent torture" `Slow test_index_torture ]);
      ("shared-cache",
       [ Alcotest.test_case "two handles, one index" `Quick
           test_shared_cache_two_handles;
         Alcotest.test_case "blob adoption" `Quick test_shared_cache_adoption;
         Alcotest.test_case "eviction integrity" `Quick
           test_shared_cache_eviction_integrity;
         Alcotest.test_case "private reap_over_limit" `Quick
           test_reap_over_limit ]);
      ("cli",
       [ Alcotest.test_case "parse_addr grammar" `Quick
           test_cli_parse_addr ]);
      ("proxy",
       [ Alcotest.test_case "fleet equals local" `Quick
           test_proxy_matches_local;
         Alcotest.test_case "dead-shard failover" `Quick test_proxy_failover;
         Alcotest.test_case "no-failover transient errors" `Quick
           test_proxy_no_failover ]) ]
