(* Service-tier tests: the wire protocol codec (round-trip and
   mutation fuzz), the Failure-taxonomy → error-code mapping, and the
   daemon end-to-end over a loopback socket — handshake version
   rejection, in-flight dedupe, whole-batch admission control
   (OVERLOADED), failure streaming, warm-cache hits, and result
   equality between a remote plan and in-process execution. *)

module P = Xloops_service.Protocol
module Client = Xloops_service.Client
module Server = Xloops_service.Server
module Run_spec = Xloops.Run_spec
module Run_cache = Xloops.Run_cache
module F = Xloops.Failure
module Digest_hex = Xloops.Digest_hex
module Config = Xloops.Sim.Config
module Machine = Xloops.Sim.Machine
module Stats = Xloops.Sim.Stats

let tmp_dir () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "xloops_service_test_%d_%d" (Unix.getpid ())
       (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF))

(* run_data comparison must ignore the wall clock and the cache-origin
   markers — the only fields that depend on how a result was obtained
   rather than on what was simulated. *)
let strip (rd : Run_spec.run_data) =
  { rd with
    Run_spec.stats =
      { rd.Run_spec.stats with Stats.wall_ns = 0; cache_hits = 0;
        cache_misses = 0 } }

let spec ?fuel ?(cfg = Config.io_x) ?(mode = Machine.Specialized) name =
  Run_spec.make ?fuel ~cfg ~mode name

let spec_pool =
  [ spec "war-uc";
    spec ~mode:Machine.Traditional "war-uc";
    spec ~cfg:Config.ooo2_x ~mode:Machine.Adaptive "war-uc";
    spec ~fuel:123_456 ~cfg:Config.io ~mode:Machine.Traditional "kmeans-or" ]

(* -- Addresses ----------------------------------------------------------- *)

let test_parse_addr () =
  let ok s = match P.parse_addr s with
    | Ok a -> Fmt.str "%a" P.pp_addr a
    | Error e -> Alcotest.failf "parse_addr %S: %s" s e
  in
  Alcotest.(check string) "unix" "unix:/tmp/x.sock" (ok "unix:/tmp/x.sock");
  Alcotest.(check string) "tcp" "tcp:127.0.0.1:7440" (ok "tcp:127.0.0.1:7440");
  Alcotest.(check string) "bare host:port" "tcp:localhost:0" (ok "localhost:0");
  List.iter
    (fun s ->
       Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true
         (Result.is_error (P.parse_addr s)))
    [ ""; "tcp:host"; "tcp:host:notaport"; "host:-1"; "host:70000" ]

(* -- Codec round-trip and fuzz ------------------------------------------- *)

(* Equality via the canonical encoding: the codec is deterministic, so
   re-encoding the decoded value must reproduce the input bytes. *)
let roundtrip_request r =
  match P.decode_request (P.encode_request r) with
  | Error e -> QCheck.Test.fail_reportf "decode_request: %s" e
  | Ok r' -> String.equal (P.encode_request r) (P.encode_request r')

let roundtrip_response r =
  match P.decode_response (P.encode_response r) with
  | Error e -> QCheck.Test.fail_reportf "decode_response: %s" e
  | Ok r' -> String.equal (P.encode_response r) (P.encode_response r')

let gen_error =
  QCheck.Gen.(
    map3
      (fun f transient message -> { P.code = f; transient; message })
      (oneofl
         [ P.Version_mismatch; P.Malformed; P.Overloaded; P.Shutting_down;
           P.Sim_error; P.Check_error; P.Timeout_error; P.Crash_error;
           P.Io_error ])
      bool (string_size (int_bound 20)))

let gen_specs = QCheck.Gen.(list_size (int_bound 4) (oneofl spec_pool))

let gen_request =
  QCheck.Gen.(
    oneof
      [ map2 (fun version ocaml -> P.Hello { version; ocaml })
          (int_bound 1000) (string_size (int_bound 12));
        map3
          (fun deadline_ms max_retries specs ->
             P.Submit { deadline_ms; max_retries; specs })
          (opt (int_bound 100_000)) (int_bound 9) gen_specs;
        return P.Stats; return P.Ping; return P.Shutdown ])

(* One executed result is enough to exercise the run_data blob path —
   its encoding is a checksummed [Marshal], not field-by-field. *)
let sample_rd = lazy (Run_spec.execute (List.hd spec_pool))

let gen_response =
  QCheck.Gen.(
    oneof
      [ map3
          (fun version ocaml banner -> P.Welcome { version; ocaml; banner })
          (int_bound 1000) (string_size (int_bound 12))
          (string_size (int_bound 12));
        map3
          (fun index sp outcome ->
             P.Result { index; digest = Run_spec.digest sp; outcome })
          (int_bound 500) (oneofl spec_pool)
          (oneof
             [ map (fun e -> Error e) gen_error;
               return (Ok (Lazy.force sample_rd)) ]);
        map (fun delivered -> P.Batch_done { delivered }) (int_bound 500);
        map
          (fun l ->
             P.Stats_reply
               { P.uptime_ms = 1; workers = List.length l; queue_depth = 0;
                 queue_limit = 4; in_flight = 1; accepted = 9;
                 rejected_batches = 2; dedup_hits = 3; completed = 5;
                 failed = 1; cache_hits = 2; cache_misses = 3;
                 cache_stores = 3; per_worker = l })
          (list_size (int_bound 4)
             (map2 (fun w_jobs w_busy_ms -> { P.w_jobs; w_busy_ms })
                (int_bound 100) (int_bound 10_000)));
        return P.Pong;
        map (fun e -> P.Rejected e) gen_error;
        return P.Bye ])

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request codec round-trips" ~count:200
    (QCheck.make gen_request) roundtrip_request

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response codec round-trips" ~count:200
    (QCheck.make gen_response) roundtrip_response

(* A tampered payload must decode to [Error] (or to some valid message,
   for byte flips the codec cannot distinguish) — never raise. *)
let prop_decode_total =
  QCheck.Test.make ~name:"decoders never raise on tampered payloads"
    ~count:300
    QCheck.(triple (make gen_request) small_nat small_nat)
    (fun (r, pos, byte) ->
       let s = Bytes.of_string (P.encode_request r) in
       if Bytes.length s > 0 then
         Bytes.set s (pos mod Bytes.length s) (Char.chr (byte land 0xFF));
       let s = Bytes.to_string s in
       (match P.decode_request s with Ok _ | Error _ -> ());
       (match P.decode_response s with Ok _ | Error _ -> ());
       true)

let test_framing () =
  let path = tmp_dir () ^ ".frames" in
  let oc = open_out_bin path in
  P.write_frame oc "alpha";
  P.write_frame oc "";
  output_string oc "\x00\x00\x00\x10tr";   (* truncated final frame *)
  close_out oc;
  let ic = open_in_bin path in
  Alcotest.(check bool) "first frame" true (P.read_frame ic = `Frame "alpha");
  Alcotest.(check bool) "empty frame" true (P.read_frame ic = `Frame "");
  (match P.read_frame ic with
   | `Error _ -> ()
   | `Frame _ | `Eof -> Alcotest.fail "truncated frame must be `Error");
  close_in ic;
  let ic = open_in_bin "/dev/null" in
  Alcotest.(check bool) "eof" true (P.read_frame ic = `Eof);
  close_in ic;
  Sys.remove path

(* -- Failure taxonomy mapping -------------------------------------------- *)

let test_error_of_failure () =
  let check name f code transient =
    let e = P.error_of_failure f in
    Alcotest.(check string) (name ^ " code") (P.error_code_name code)
      (P.error_code_name e.P.code);
    Alcotest.(check bool) (name ^ " transient") transient e.P.transient
  in
  check "sim" (F.Sim (Machine.Out_of_fuel { pc = 0; insns = 1; cycle = 1 }))
    P.Sim_error false;
  check "check" (F.Check { kernel = "k"; what = "w"; msg = "m" })
    P.Check_error false;
  check "timeout" (F.Timeout { elapsed_ms = 7; deadline_ms = 5 })
    P.Timeout_error true;
  check "crash/transient" (F.Crash { exn = "boom"; transient = true })
    P.Crash_error true;
  check "crash/permanent" (F.Crash { exn = "boom"; transient = false })
    P.Crash_error false;
  check "io" (F.Io "disk on fire") P.Io_error true

(* -- The daemon, end to end ---------------------------------------------- *)

let with_server ?workers ?max_queue ?cache ?chaos ?deadline_ms ?max_retries
    ?compress_threshold f =
  let cfg =
    Server.config ~addr:(P.Tcp ("127.0.0.1", 0)) ?workers ?max_queue ?cache
      ?chaos ?deadline_ms ?max_retries ?compress_threshold ~banner:"test" ()
  in
  let t = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop t)
    (fun () -> f t (Server.bound_addr t))

let connect ?version addr =
  match Client.connect ?version addr with
  | Ok s -> s
  | Error e -> Alcotest.failf "connect: %a" Client.pp_connect_error e

let submit_all s specs =
  let results = Array.make (List.length specs) None in
  match
    Client.submit s
      ~on_result:(fun ~index ~digest:_ r -> results.(index) <- Some r)
      specs
  with
  | Ok delivered -> (delivered, results)
  | Error (Client.Submit_rejected e) ->
    Alcotest.failf "batch rejected: %a" P.pp_error e
  | Error (Client.Submit_conn m) -> Alcotest.failf "connection died: %s" m

let test_version_mismatch () =
  with_server @@ fun _t addr ->
  (match Client.connect ~version:(P.version + 99) addr with
   | Error (Client.Refused e) ->
     Alcotest.(check string) "code" "version-mismatch"
       (P.error_code_name e.P.code);
     Alcotest.(check bool) "permanent" false e.P.transient
   | Error (Client.Conn m) -> Alcotest.failf "wrong error: %s" m
   | Ok _ -> Alcotest.fail "handshake should have been rejected");
  (* The rejection must not poison the listener for the next client. *)
  let s = connect addr in
  Alcotest.(check string) "banner still served" "test" (Client.banner s);
  Client.close s

let test_dedupe_and_equality () =
  with_server ~workers:2 @@ fun t addr ->
  let a = List.nth spec_pool 0 and b = List.nth spec_pool 1 in
  let s = connect addr in
  let delivered, results = submit_all s [ a; b; a ] in
  Client.close s;
  Alcotest.(check int) "every waiter gets a result" 3 delivered;
  let rd i =
    match results.(i) with
    | Some (Ok rd) -> strip rd
    | Some (Error e) -> Alcotest.failf "spec %d failed: %a" i P.pp_error e
    | None -> Alcotest.failf "spec %d never answered" i
  in
  Alcotest.(check bool) "duplicate indexes agree" true (rd 0 = rd 2);
  Alcotest.(check bool) "remote equals local (a)" true
    (rd 0 = strip (Run_spec.execute a));
  Alcotest.(check bool) "remote equals local (b)" true
    (rd 1 = strip (Run_spec.execute b));
  let st = Server.stats t in
  Alcotest.(check int) "one simulation per distinct spec" 2 st.P.completed;
  Alcotest.(check int) "third spec coalesced in flight" 1 st.P.dedup_hits;
  Alcotest.(check int) "admission counted all three" 3 st.P.accepted;
  Alcotest.(check int) "per-worker jobs sum to completed" 2
    (List.fold_left (fun n w -> n + w.P.w_jobs) 0 st.P.per_worker)

let test_backpressure () =
  with_server ~max_queue:2 @@ fun _t addr ->
  let s = connect addr in
  let batch =
    [ spec "war-uc"; spec ~cfg:Config.ooo2_x "war-uc";
      spec ~cfg:Config.ooo4_x "war-uc";
      spec ~cfg:Config.io ~mode:Machine.Traditional "war-uc" ]
  in
  (* 4 fresh specs against a queue bound of 2: rejected whole, before
     any of them simulates. *)
  (match Client.submit s ~on_result:(fun ~index:_ ~digest:_ _ -> ()) batch with
   | Error (Client.Submit_rejected e) ->
     Alcotest.(check string) "code" "overloaded" (P.error_code_name e.P.code);
     Alcotest.(check bool) "transient" true e.P.transient
   | Error (Client.Submit_conn m) -> Alcotest.failf "connection died: %s" m
   | Ok _ -> Alcotest.fail "batch should have been rejected");
  (* The same session can immediately submit a batch that fits. *)
  let delivered, _ = submit_all s [ spec "war-uc" ] in
  Alcotest.(check int) "small batch accepted after rejection" 1 delivered;
  (match Client.stats s with
   | Ok st ->
     Alcotest.(check int) "rejection counted" 1 st.P.rejected_batches
   | Error _ -> Alcotest.fail "stats after rejection");
  Client.close s

let test_failure_streams_back () =
  with_server @@ fun _t addr ->
  let s = connect addr in
  let starved = spec ~fuel:1 "war-uc" in
  let delivered, results = submit_all s [ starved; spec "war-uc" ] in
  Client.close s;
  Alcotest.(check int) "both answered" 2 delivered;
  (match results.(0) with
   | Some (Error e) ->
     Alcotest.(check string) "taxonomy code over the wire" "sim"
       (P.error_code_name e.P.code);
     Alcotest.(check bool) "permanent" false e.P.transient
   | Some (Ok _) -> Alcotest.fail "1-instruction fuel must fail"
   | None -> Alcotest.fail "no result for the starved spec");
  match results.(1) with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "healthy spec must still succeed"

let test_warm_cache_hits () =
  let dir = tmp_dir () in
  let cache = Run_cache.create ~dir () in
  with_server ~cache @@ fun t addr ->
  let s = connect addr in
  let batch = [ spec "war-uc"; spec ~mode:Machine.Traditional "war-uc" ] in
  let _, cold = submit_all s batch in
  let _, warm = submit_all s batch in
  Client.close s;
  let st = Server.stats t in
  Alcotest.(check int) "cold batch missed" 2 st.P.cache_misses;
  Alcotest.(check int) "warm batch hit" 2 st.P.cache_hits;
  Alcotest.(check int) "stored once per spec" 2 st.P.cache_stores;
  let rd = function
    | Some (Ok rd) -> strip rd
    | _ -> Alcotest.fail "expected a success"
  in
  Alcotest.(check bool) "cache round-trip preserves results" true
    (rd cold.(0) = rd warm.(0) && rd cold.(1) = rd warm.(1))

let test_run_plan_matches_local () =
  with_server ~workers:2 @@ fun _t addr ->
  let plan = spec_pool @ [ spec ~fuel:1 "war-uc" ] in
  match Client.run_plan ~chunk:2 addr plan with
  | Error m -> Alcotest.failf "run_plan: %s" m
  | Ok results ->
    Alcotest.(check int) "one slot per spec" (List.length plan)
      (Array.length results);
    List.iteri
      (fun i sp ->
         match results.(i), Run_spec.execute_result sp with
         | Ok rd, Ok local ->
           Alcotest.(check bool)
             (Printf.sprintf "spec %d equals local" i) true
             (strip rd = strip local)
         | Error e, Error f ->
           Alcotest.(check string)
             (Printf.sprintf "spec %d failure code" i)
             (P.error_code_name (P.error_of_failure f).P.code)
             (P.error_code_name e.P.code)
         | Ok _, Error _ | Error _, Ok _ ->
           Alcotest.failf "spec %d: remote and local disagree" i)
      plan

(* -- Protocol v2: negotiation, progress, cancel, compression ------------- *)

(* A v1 client against a v2 server: the session must downgrade — same
   results, no Progress frames, no compressed blobs, cancel refused. *)
let test_v1_downgrade () =
  (* threshold 1 would compress every blob on a v2 session — a v1
     session must never see one *)
  with_server ~compress_threshold:1 @@ fun _t addr ->
  let s = connect ~version:1 addr in
  Alcotest.(check int) "negotiated down to v1" 1
    (Client.negotiated_version s);
  let progress = ref [] in
  let results = Array.make 2 None in
  let batch = [ spec "war-uc"; spec ~mode:Machine.Traditional "war-uc" ] in
  (match
     Client.submit s
       ~on_progress:(fun ~index -> progress := index :: !progress)
       ~on_result:(fun ~index ~digest:_ r -> results.(index) <- Some r)
       batch
   with
   | Ok delivered -> Alcotest.(check int) "batch delivered" 2 delivered
   | Error _ -> Alcotest.fail "v1 session must still serve batches");
  Alcotest.(check (list int)) "no progress frames on v1" [] !progress;
  List.iteri
    (fun i sp ->
       match results.(i) with
       | Some (Ok rd) ->
         Alcotest.(check bool) (Printf.sprintf "spec %d equals local" i) true
           (strip rd = strip (Run_spec.execute sp))
       | _ -> Alcotest.failf "spec %d failed over v1" i)
    batch;
  (match Client.cancel s with
   | Error (Client.Submit_rejected e) ->
     Alcotest.(check string) "cancel refused on v1" "version-mismatch"
       (P.error_code_name e.P.code)
   | Ok () -> Alcotest.fail "cancel must be a v2 feature"
   | Error (Client.Submit_conn m) -> Alcotest.failf "connection died: %s" m);
  Client.close s

(* Every job that starts announces itself to every waiter — including
   both indexes of an in-batch duplicate. *)
let test_progress_frames () =
  with_server @@ fun _t addr ->
  let s = connect addr in
  Alcotest.(check int) "negotiated v2" P.version
    (Client.negotiated_version s);
  let a = List.nth spec_pool 0 and b = List.nth spec_pool 1 in
  let progress = ref [] in
  let delivered =
    match
      Client.submit s
        ~on_progress:(fun ~index -> progress := index :: !progress)
        ~on_result:(fun ~index:_ ~digest:_ _ -> ())
        [ a; b; a ]
    with
    | Ok d -> d
    | Error _ -> Alcotest.fail "submit failed"
  in
  Client.close s;
  Alcotest.(check int) "all delivered" 3 delivered;
  Alcotest.(check (list int)) "progress for every index, dupes included"
    [ 0; 1; 2 ] (List.sort compare !progress)

(* CANCEL drops the unstarted tail of a batch.  A chaos stall pins the
   single worker inside job 0 (its PROGRESS is sent before the stall),
   so the cancel provably races nothing: 1..3 are still queued. *)
let test_cancel_unstarted () =
  let chaos = Xloops.Chaos.explicit ~stall_ms:500 [ (0, Xloops.Chaos.Worker_stall) ] in
  with_server ~workers:1 ~chaos @@ fun _t addr ->
  let s = connect addr in
  let batch =
    [ spec "war-uc"; spec ~mode:Machine.Traditional "war-uc";
      spec ~cfg:Config.ooo2_x "war-uc"; spec ~cfg:Config.ooo4_x "war-uc" ]
  in
  let results = Array.make 4 None in
  let cancelled = ref false in
  let delivered =
    match
      Client.submit s
        ~on_progress:(fun ~index:_ ->
          if not !cancelled then begin
            cancelled := true;
            match Client.cancel s with
            | Ok () -> ()
            | Error _ -> Alcotest.fail "cancel failed"
          end)
        ~on_result:(fun ~index ~digest:_ r -> results.(index) <- Some r)
        batch
    with
    | Ok d -> d
    | Error (Client.Submit_rejected e) ->
      Alcotest.failf "batch rejected: %a" P.pp_error e
    | Error (Client.Submit_conn m) -> Alcotest.failf "connection died: %s" m
  in
  Alcotest.(check int) "only the started job delivered" 1 delivered;
  (match results.(0) with
   | Some (Ok _) -> ()
   | _ -> Alcotest.fail "the in-flight job must still complete");
  for i = 1 to 3 do
    if results.(i) <> None then
      Alcotest.failf "cancelled spec %d was answered" i
  done;
  (* the session survives a cancel: a fresh batch runs normally *)
  let delivered, _ = submit_all s [ spec ~cfg:Config.io "war-uc" ] in
  Alcotest.(check int) "session reusable after cancel" 1 delivered;
  Client.close s

(* With the threshold floored, every result blob crosses the wire
   LZSS-compressed — and must decode back to exactly the local run. *)
let test_compressed_results () =
  with_server ~compress_threshold:1 @@ fun _t addr ->
  let s = connect addr in
  let delivered, results = submit_all s spec_pool in
  Client.close s;
  Alcotest.(check int) "all delivered" (List.length spec_pool) delivered;
  List.iteri
    (fun i sp ->
       match results.(i) with
       | Some (Ok rd) ->
         Alcotest.(check bool)
           (Printf.sprintf "compressed spec %d equals local" i) true
           (strip rd = strip (Run_spec.execute sp))
       | _ -> Alcotest.failf "spec %d failed" i)
    spec_pool

let test_shutdown_request () =
  let cfg =
    Server.config ~addr:(P.Tcp ("127.0.0.1", 0)) ~banner:"test" ()
  in
  let t = Server.start cfg in
  let s = connect (Server.bound_addr t) in
  (match Client.shutdown s with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "shutdown not acknowledged");
  Client.close s;
  Server.wait t;                               (* returns once flagged *)
  Server.stop t;
  Server.stop t                                (* idempotent *)

let () =
  Alcotest.run "service"
    [ ("protocol",
       [ Alcotest.test_case "parse_addr" `Quick test_parse_addr;
         Alcotest.test_case "framing" `Quick test_framing;
         Alcotest.test_case "taxonomy mapping" `Quick test_error_of_failure;
         QCheck_alcotest.to_alcotest prop_request_roundtrip;
         QCheck_alcotest.to_alcotest prop_response_roundtrip;
         QCheck_alcotest.to_alcotest prop_decode_total ]);
      ("daemon",
       [ Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
         Alcotest.test_case "in-flight dedupe" `Quick test_dedupe_and_equality;
         Alcotest.test_case "admission control" `Quick test_backpressure;
         Alcotest.test_case "failure streaming" `Quick
           test_failure_streams_back;
         Alcotest.test_case "warm cache hits" `Quick test_warm_cache_hits;
         Alcotest.test_case "run_plan vs local" `Quick
           test_run_plan_matches_local;
         Alcotest.test_case "shutdown request" `Quick
           test_shutdown_request ]);
      ("protocol-v2",
       [ Alcotest.test_case "v1 client downgrade" `Quick test_v1_downgrade;
         Alcotest.test_case "progress frames" `Quick test_progress_frames;
         Alcotest.test_case "cancel unstarted tail" `Quick
           test_cancel_unstarted;
         Alcotest.test_case "compressed result blobs" `Quick
           test_compressed_results ]) ]
