(* Trace infrastructure: levels, line limits, zero-interference with
   timing, and the content of the loop-level event stream. *)

module Trace = Xloops_sim.Trace
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Kernel = Xloops_kernels.Kernel
module Registry = Xloops_kernels.Registry
module Compile = Xloops_compiler.Compile
module Memory = Xloops_mem.Memory

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  go 0

let traced_run ?level ?limit ?(cfg = Config.io_x) name mode =
  let k = Registry.find name in
  let c = Compile.compile k.Kernel.kernel in
  let mem = Memory.create () in
  k.init c.array_base mem;
  let buf = Buffer.create 4096 in
  let trace = Trace.to_buffer ?level ?limit buf in
  let r = Machine.ok_exn (Machine.simulate ~trace ~cfg ~mode c.program mem) in
  (r, Buffer.contents buf)

let test_decisions_content () =
  let _, log = traced_run "war-uc" Machine.Specialized in
  Alcotest.(check bool) "mentions scan" true (contains log "scan xloop@");
  Alcotest.(check bool) "mentions lpsu start" true
    (contains log "lpsu start: xloop.uc");
  Alcotest.(check bool) "mentions completion" true
    (contains log "lpsu done:");
  (* Decisions level excludes lane noise. *)
  Alcotest.(check bool) "no dispatch lines" false (contains log "dispatch")

let test_lanes_content () =
  let _, log = traced_run ~level:Trace.Lanes "ksack-sm-om"
      Machine.Specialized in
  Alcotest.(check bool) "dispatches" true (contains log "dispatch iter=");
  Alcotest.(check bool) "commits" true (contains log "commit iter=");
  Alcotest.(check bool) "squashes" true (contains log "SQUASH")

let test_insns_content () =
  let _, log = traced_run ~level:Trace.Insns ~limit:4000 "war-uc"
      Machine.Specialized in
  Alcotest.(check bool) "gpp instructions" true (contains log "gpp");
  Alcotest.(check bool) "lane instructions" true (contains log "lane");
  Alcotest.(check bool) "disassembly" true (contains log "addiu.xi")

let test_db_bound_events () =
  let _, log = traced_run ~level:Trace.Lanes "bfs-uc-db"
      Machine.Specialized in
  Alcotest.(check bool) "bound raised" true (contains log "bound raised")

let test_de_exit_event () =
  let _, log = traced_run "find-de" Machine.Specialized in
  Alcotest.(check bool) "exit taken" true
    (contains log "data-dependent exit taken")

let test_adaptive_migration_event () =
  (* On the 4-way out-of-order host, adpcm's long register-carried
     critical path makes specialized execution lose, so adaptive
     execution migrates the loop back. *)
  let _, log = traced_run ~cfg:Config.ooo4_x "adpcm-or" Machine.Adaptive in
  Alcotest.(check bool) "profile verdict" true
    (contains log "GPP profile done");
  Alcotest.(check bool) "migration" true (contains log "migrating back")

let test_fallback_event () =
  let k = Registry.find "war-uc" in
  let c = Compile.compile k.kernel in
  let mem = Memory.create () in
  k.init c.array_base mem;
  let buf = Buffer.create 256 in
  let trace = Trace.to_buffer buf in
  let lpsu = { Config.default_lpsu with ib_entries = 4 } in
  let cfg = Config.with_lpsu Config.io "+tiny" ~lpsu in
  ignore (Machine.ok_exn
            (Machine.simulate ~trace ~cfg ~mode:Machine.Specialized
               c.program mem));
  Alcotest.(check bool) "fallback reason" true
    (contains (Buffer.contents buf) "falls back to traditional")

let test_limit_respected () =
  let buf = Buffer.create 256 in
  let trace = Trace.to_buffer ~level:Trace.Insns ~limit:10 buf in
  let k = Registry.find "war-uc" in
  let c = Compile.compile k.Kernel.kernel in
  let mem = Memory.create () in
  k.init c.array_base mem;
  ignore (Machine.ok_exn
            (Machine.simulate ~trace ~cfg:Config.io_x
               ~mode:Machine.Specialized c.program mem));
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  Alcotest.(check bool) "at most 10 lines" true
    (List.length (List.filter (fun l -> l <> "") lines) <= 10);
  Alcotest.(check bool) "exhausted" true (Trace.exhausted (Some trace))

let test_tracing_does_not_change_timing () =
  let run trace =
    let k = Registry.find "kmeans-or" in
    let c = Compile.compile k.Kernel.kernel in
    let mem = Memory.create () in
    k.init c.array_base mem;
    (Machine.ok_exn
       (Machine.simulate ?trace ~cfg:Config.io_x ~mode:Machine.Specialized
          c.program mem)).Machine.cycles
  in
  let plain = run None in
  let buf = Buffer.create 65536 in
  let traced = run (Some (Trace.to_buffer ~level:Trace.Insns buf)) in
  Alcotest.(check int) "identical cycles" plain traced

let () =
  Alcotest.run "trace"
    [ ("levels",
       [ Alcotest.test_case "decisions" `Quick test_decisions_content;
         Alcotest.test_case "lanes" `Quick test_lanes_content;
         Alcotest.test_case "insns" `Quick test_insns_content ]);
      ("events",
       [ Alcotest.test_case "db bound" `Quick test_db_bound_events;
         Alcotest.test_case "de exit" `Quick test_de_exit_event;
         Alcotest.test_case "adaptive migration" `Quick
           test_adaptive_migration_event;
         Alcotest.test_case "fallback" `Quick test_fallback_event ]);
      ("mechanics",
       [ Alcotest.test_case "line limit" `Quick test_limit_respected;
         Alcotest.test_case "no timing interference" `Quick
           test_tracing_does_not_change_timing ]);
    ]
