(* Functional executor tests: ALU/FPU semantics (including int32 corner
   cases), control flow, memory instructions, and whole-program runs. *)

open Xloops_isa
module B = Xloops_asm.Builder
module Memory = Xloops_mem.Memory
module Exec = Xloops_sim.Exec

let run_serial ?fuel p mem =
  match Exec.run_serial ?fuel p mem with
  | Ok r -> r
  | Error stop -> failwith (Fmt.str "%a" Exec.pp_stop stop)

let run_prog build =
  let b = B.create () in
  build b;
  B.halt b;
  let p = B.assemble b in
  let mem = Memory.create () in
  let r = run_serial p mem in
  (r, mem)

let reg (r : Exec.run) n = Exec.get r.final n

(* -- ALU semantics ------------------------------------------------------ *)

let test_alu_basic () =
  let r, _ = run_prog (fun b ->
      B.li b 8 7; B.li b 9 3;
      B.add b 10 8 9;
      B.sub b 11 8 9;
      B.mul b 12 8 9;
      B.div b 13 8 9;
      B.rem b 14 8 9;
      B.and_ b 15 8 9;
      B.or_ b 16 8 9;
      B.xor b 17 8 9;
      B.slt b 18 9 8;
      B.slt b 19 8 9)
  in
  Alcotest.(check int32) "add" 10l (reg r 10);
  Alcotest.(check int32) "sub" 4l (reg r 11);
  Alcotest.(check int32) "mul" 21l (reg r 12);
  Alcotest.(check int32) "div" 2l (reg r 13);
  Alcotest.(check int32) "rem" 1l (reg r 14);
  Alcotest.(check int32) "and" 3l (reg r 15);
  Alcotest.(check int32) "or" 7l (reg r 16);
  Alcotest.(check int32) "xor" 4l (reg r 17);
  Alcotest.(check int32) "slt true" 1l (reg r 18);
  Alcotest.(check int32) "slt false" 0l (reg r 19)

let test_alu_corner_cases () =
  Alcotest.(check int32) "div by zero" (-1l) (Exec.alu_eval Div 42l 0l);
  Alcotest.(check int32) "rem by zero" 42l (Exec.alu_eval Rem 42l 0l);
  Alcotest.(check int32) "min/-1 div" Int32.min_int
    (Exec.alu_eval Div Int32.min_int (-1l));
  Alcotest.(check int32) "min/-1 rem" 0l
    (Exec.alu_eval Rem Int32.min_int (-1l));
  Alcotest.(check int32) "overflow wraps" Int32.min_int
    (Exec.alu_eval Add Int32.max_int 1l);
  Alcotest.(check int32) "mulh" 1l
    (Exec.alu_eval Mulh 0x10000l 0x10000l);
  Alcotest.(check int32) "sltu on negative" 1l
    (Exec.alu_eval Sltu 1l (-1l));
  Alcotest.(check int32) "sra sign" (-1l)
    (Exec.alu_eval Sra (-2l) 1l);
  Alcotest.(check int32) "srl no sign" 0x7FFFFFFFl
    (Exec.alu_eval Srl (-2l) 1l);
  Alcotest.(check int32) "nor" (-1l) (Exec.alu_eval Nor 0l 0l);
  Alcotest.(check int32) "shift amount masked" 2l
    (Exec.alu_eval Sll 1l 33l)

let test_r0_immutable () =
  let r, _ = run_prog (fun b ->
      B.li b 8 5;
      B.add b 0 8 8;   (* write to r0 discarded *)
      B.add b 9 0 8)
  in
  Alcotest.(check int32) "r0 is 0" 0l (reg r 0);
  Alcotest.(check int32) "read as 0" 5l (reg r 9)

(* -- FPU ---------------------------------------------------------------- *)

let test_fpu () =
  let f v = Int32.bits_of_float v in
  Alcotest.(check int32) "fadd" (f 5.5) (Exec.fpu_eval Fadd (f 2.25) (f 3.25));
  Alcotest.(check int32) "fmul" (f 7.5) (Exec.fpu_eval Fmul (f 2.5) (f 3.0));
  Alcotest.(check int32) "fdiv" (f 2.5) (Exec.fpu_eval Fdiv (f 5.0) (f 2.0));
  Alcotest.(check int32) "flt" 1l (Exec.fpu_eval Flt (f 1.0) (f 2.0));
  Alcotest.(check int32) "fle eq" 1l (Exec.fpu_eval Fle (f 2.0) (f 2.0));
  Alcotest.(check int32) "feq" 0l (Exec.fpu_eval Feq (f 1.0) (f 2.0));
  Alcotest.(check int32) "fmin" (f 1.0) (Exec.fpu_eval Fmin (f 1.0) (f 2.0));
  Alcotest.(check int32) "fmax" (f 2.0) (Exec.fpu_eval Fmax (f 1.0) (f 2.0));
  Alcotest.(check int32) "cvt int->f" (f 7.0) (Exec.fpu_eval Fcvt_sw 7l 0l);
  Alcotest.(check int32) "cvt f->int" 3l (Exec.fpu_eval Fcvt_ws (f 3.9) 0l);
  Alcotest.(check int32) "cvt f->int neg" (-3l)
    (Exec.fpu_eval Fcvt_ws (f (-3.9)) 0l)

(* -- control flow -------------------------------------------------------- *)

let test_countdown_loop () =
  let r, _ = run_prog (fun b ->
      B.li b 8 10;
      B.li b 9 0;
      B.label b "top";
      B.add b 9 9 8;
      B.addi b 8 8 (-1);
      B.bne b 8 0 "top")
  in
  Alcotest.(check int32) "sum 10..1" 55l (reg r 9)

let test_jal_jr () =
  let r, _ = run_prog (fun b ->
      B.li b 8 1;
      B.jal b "func";
      B.addi b 8 8 100;   (* runs after return *)
      B.jump b "done";
      B.label b "func";
      B.addi b 8 8 10;
      B.jr b Reg.ra;
      B.label b "done")
  in
  Alcotest.(check int32) "call/return" 111l (reg r 8)

let test_xloop_as_branch () =
  (* Traditional semantics: xloop == blt. *)
  let r, _ = run_prog (fun b ->
      B.li b 8 0;   (* idx *)
      B.li b 9 5;   (* bound *)
      B.li b 10 0;
      B.label b "body";
      B.addi b 10 10 2;
      B.xi_addi b 8 8 1;
      B.xloop b { Insn.dp = Uc; cp = Fixed } 8 9 "body")
  in
  Alcotest.(check int32) "5 iterations" 10l (reg r 10);
  Alcotest.(check int32) "idx = bound" 5l (reg r 8)

(* -- memory -------------------------------------------------------------- *)

let test_load_store () =
  let r, mem = run_prog (fun b ->
      B.li b 8 0x100;
      B.li b 9 (-2);
      B.sw b 9 8 0;
      B.lw b 10 8 0;
      B.lb b 11 8 0;     (* 0xFE -> -2 *)
      B.lbu b 12 8 0;    (* 0xFE -> 254 *)
      B.lh b 13 8 2;     (* 0xFFFF -> -1 *)
      B.lhu b 14 8 2)
  in
  Alcotest.(check int32) "lw" (-2l) (reg r 10);
  Alcotest.(check int32) "lb" (-2l) (reg r 11);
  Alcotest.(check int32) "lbu" 254l (reg r 12);
  Alcotest.(check int32) "lh" (-1l) (reg r 13);
  Alcotest.(check int32) "lhu" 65535l (reg r 14);
  Alcotest.(check int32) "memory" (-2l) (Memory.get_i32 mem 0x100)

let test_amo_insn () =
  let r, mem = run_prog (fun b ->
      B.li b 8 0x200;
      B.li b 9 5;
      B.sw b 9 8 0;
      B.li b 10 3;
      B.amo b Amo_add 11 8 10)
  in
  Alcotest.(check int32) "old value" 5l (reg r 11);
  Alcotest.(check int32) "new value" 8l (Memory.get_i32 mem 0x200)

(* -- run_serial machinery ------------------------------------------------ *)

let test_dynamic_count () =
  let b = B.create () in
  B.li b 8 3;
  B.label b "top";
  B.addi b 8 8 (-1);
  B.bne b 8 0 "top";
  B.halt b;
  let p = B.assemble b in
  let r = run_serial p (Memory.create ()) in
  (* li + 3*(addi+bne) = 7 *)
  Alcotest.(check int) "dyn insns" 7 r.dynamic_insns

let test_fuel () =
  let b = B.create () in
  B.label b "spin";
  B.jump b "spin";
  let p = B.assemble b in
  match Exec.run_serial ~fuel:1000 p (Memory.create ()) with
  | Ok _ -> Alcotest.fail "expected Out_of_fuel"
  | Error (Exec.Out_of_fuel { pc; insns; cycle }) ->
    Alcotest.(check int) "pc at the spin" 0 pc;
    Alcotest.(check int) "insns = fuel" 1000 insns;
    Alcotest.(check int) "functional cycles = insns" insns cycle

let test_pc_out_of_range () =
  let b = B.create () in
  B.nop b;  (* falls off the end *)
  let p = B.assemble b in
  Alcotest.(check bool) "traps" true
    (try ignore (run_serial p (Memory.create ())); false
     with Exec.Trap _ -> true)

(* -- properties ----------------------------------------------------------- *)

let prop_alu_matches_reference =
  QCheck.Test.make ~name:"add/sub/xor agree with Int32" ~count:1000
    QCheck.(pair int32 int32)
    (fun (a, b) ->
       Exec.alu_eval Add a b = Int32.add a b
       && Exec.alu_eval Sub a b = Int32.sub a b
       && Exec.alu_eval Xor a b = Int32.logxor a b
       && Exec.alu_eval Mul a b = Int32.mul a b)

let prop_slt_antisymmetric =
  QCheck.Test.make ~name:"slt antisymmetry" ~count:1000
    QCheck.(pair int32 int32)
    (fun (a, b) ->
       let lt = Exec.alu_eval Slt a b = 1l in
       let gt = Exec.alu_eval Slt b a = 1l in
       not (lt && gt) && (a = b || lt || gt))

let prop_div_rem_consistent =
  QCheck.Test.make ~name:"a = b*(a/b) + a%b when b<>0" ~count:1000
    QCheck.(pair int32 int32)
    (fun (a, b) ->
       QCheck.assume (b <> 0l);
       QCheck.assume (not (a = Int32.min_int && b = -1l));
       let q = Exec.alu_eval Div a b and r = Exec.alu_eval Rem a b in
       Int32.add (Int32.mul q b) r = a)

let () =
  Alcotest.run "exec"
    [ ("alu",
       [ Alcotest.test_case "basic" `Quick test_alu_basic;
         Alcotest.test_case "corner cases" `Quick test_alu_corner_cases;
         Alcotest.test_case "r0" `Quick test_r0_immutable;
         QCheck_alcotest.to_alcotest prop_alu_matches_reference;
         QCheck_alcotest.to_alcotest prop_slt_antisymmetric;
         QCheck_alcotest.to_alcotest prop_div_rem_consistent ]);
      ("fpu", [ Alcotest.test_case "ops" `Quick test_fpu ]);
      ("control",
       [ Alcotest.test_case "loop" `Quick test_countdown_loop;
         Alcotest.test_case "jal/jr" `Quick test_jal_jr;
         Alcotest.test_case "xloop traditional" `Quick
           test_xloop_as_branch ]);
      ("memory",
       [ Alcotest.test_case "load/store" `Quick test_load_store;
         Alcotest.test_case "amo" `Quick test_amo_insn ]);
      ("runner",
       [ Alcotest.test_case "dynamic count" `Quick test_dynamic_count;
         Alcotest.test_case "fuel" `Quick test_fuel;
         Alcotest.test_case "pc range" `Quick test_pc_out_of_range ]);
    ]
