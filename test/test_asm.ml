(* Assembler tests: label resolution, pseudo-instruction expansion, data
   layout. *)

open Xloops_isa
module B = Xloops_asm.Builder
module Program = Xloops_asm.Program
module Layout = Xloops_asm.Layout

let run_serial p mem =
  match Xloops_sim.Exec.run_serial p mem with
  | Ok r -> r
  | Error stop -> failwith (Fmt.str "%a" Xloops_sim.Exec.pp_stop stop)

let test_labels () =
  let b = B.create () in
  B.label b "start";
  B.addi b 8 0 1;
  B.bne b 8 0 "start";
  B.jump b "end";
  B.nop b;
  B.label b "end";
  B.halt b;
  let p = B.assemble b in
  Alcotest.(check int) "length" 5 (Program.length p);
  (match p.insns.(1) with
   | Branch (Bne, _, _, 0) -> ()
   | i -> Alcotest.failf "bad branch: %a" Insn.pp_resolved i);
  (match p.insns.(2) with
   | Jump 4 -> ()
   | i -> Alcotest.failf "bad jump: %a" Insn.pp_resolved i);
  Alcotest.(check int) "symbol" 4 (Program.address_of_symbol p "end")

let test_undefined_label () =
  let b = B.create () in
  B.jump b "nowhere";
  Alcotest.check_raises "undefined" (B.Undefined_label "nowhere")
    (fun () -> ignore (B.assemble b))

let test_duplicate_label () =
  let b = B.create () in
  B.label b "x";
  B.nop b;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Builder.label: duplicate label x")
    (fun () -> B.label b "x")

let test_li_small () =
  let b = B.create () in
  B.li b 8 42;
  B.li b 9 (-100);
  let p = B.assemble b in
  Alcotest.(check int) "2 insns" 2 (Program.length p);
  (match p.insns.(0) with
   | Alui (Add, 8, 0, 42) -> ()
   | i -> Alcotest.failf "bad li: %a" Insn.pp_resolved i)

let test_li_large () =
  let b = B.create () in
  B.li b 8 0x12345678;
  let p = B.assemble b in
  Alcotest.(check int) "lui+ori" 2 (Program.length p);
  (match p.insns.(0), p.insns.(1) with
   | Lui (8, 0x1234), Alui (Or_, 8, 8, 0x5678) -> ()
   | _ -> Alcotest.fail "bad expansion");
  (* Execute it to be sure. *)
  let mem = Xloops_mem.Memory.create () in
  let b2 = B.create () in
  B.li b2 8 0x12345678;
  B.halt b2;
  let p2 = B.assemble b2 in
  let r = run_serial p2 mem in
  Alcotest.(check int32) "value" 0x12345678l (Xloops_sim.Exec.get r.final 8)

let test_li_negative_large () =
  let mem = Xloops_mem.Memory.create () in
  let b = B.create () in
  B.li b 8 (-123456789);
  B.halt b;
  let p = B.assemble b in
  let r = run_serial p mem in
  Alcotest.(check int32) "negative" (-123456789l) (Xloops_sim.Exec.get r.final 8)

let test_fresh_labels () =
  let b = B.create () in
  let l1 = B.fresh_label b "loop" in
  let l2 = B.fresh_label b "loop" in
  Alcotest.(check bool) "distinct" true (l1 <> l2)

let test_layout () =
  let l = Layout.create () in
  let a = Layout.alloc_words l ~name:"a" ~n:10 in
  let bb = Layout.alloc l ~name:"b" ~bytes:3 in
  let c = Layout.alloc_words l ~name:"c" ~n:1 in
  Alcotest.(check int) "base" 0x1000 a;
  Alcotest.(check int) "b after a" (0x1000 + 40) bb;
  Alcotest.(check int) "c aligned" (0x1000 + 44) c;
  Alcotest.(check int) "find" 0x1000 (Layout.find l "a").base;
  Alcotest.check_raises "missing" (Invalid_argument "Layout.find: zz")
    (fun () -> ignore (Layout.find l "zz"))

let test_layout_overflow () =
  let l = Layout.create ~limit:0x2000 () in
  ignore (Layout.alloc l ~name:"a" ~bytes:0xf00);
  Alcotest.(check bool) "raises" true
    (try ignore (Layout.alloc l ~name:"b" ~bytes:0x1000); false
     with Invalid_argument _ -> true)

let test_disasm_roundtrip () =
  let b = B.create () in
  B.li b 8 7;
  B.label b "top";
  B.addi b 8 8 (-1);
  B.bne b 8 0 "top";
  B.halt b;
  let p = B.assemble b in
  let s = Program.to_string p in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "mentions label" true (contains s "top:");
  Alcotest.(check bool) "mentions bne" true (contains s "bne")

(* -- parser -------------------------------------------------------------- *)

module Parser = Xloops_asm.Parser

let programs_equal (a : Program.t) (b : Program.t) =
  Array.length a.insns = Array.length b.insns
  && Array.for_all2 (Insn.equal Int.equal) a.insns b.insns

let test_parse_loop () =
  let src = {|
      addi t0, zero, 5      # counter
      add  t1, zero, zero   ; sum
    top:
      add  t1, t1, t0
      addi t0, t0, -1
      bne  t0, zero, top
      sw   t1, 0x100(zero)
      halt
  |} in
  let p = Parser.parse src in
  Alcotest.(check int) "length" 7 (Program.length p);
  let mem = Xloops_mem.Memory.create () in
  ignore (run_serial p mem);
  Alcotest.(check int) "sum 5..1" 15 (Xloops_mem.Memory.get_int mem 0x100)

let test_parse_memory_and_amo () =
  let src = {|
      addi a0, zero, 64
      addi t0, zero, 7
      sw   t0, 0(a0)
      amo_add t1, (a0), t0
      lw   t2, 0(a0)
      lbu  t3, 1(a0)
      halt
  |} in
  let p = Parser.parse src in
  let mem = Xloops_mem.Memory.create () in
  let r = run_serial p mem in
  Alcotest.(check int32) "amo old" 7l (Xloops_sim.Exec.get r.final 9);
  Alcotest.(check int32) "lw" 14l (Xloops_sim.Exec.get r.final 10)

let test_parse_xloop () =
  let src = {|
    body:
      addiu.xi t4, t4, 1
      xloop.uc.db t4, t3, body
      halt
  |} in
  let p = Parser.parse src in
  (match p.insns.(1) with
   | Insn.Xloop ({ dp = Uc; cp = Dyn }, 12, 11, 0) -> ()
   | i -> Alcotest.failf "bad xloop: %a" Insn.pp_resolved i)

let test_parse_errors () =
  let bad src frag =
    match Parser.parse src with
    | exception Parser.Parse_error { msg; _ } ->
      Alcotest.(check bool) ("mentions " ^ frag) true
        (let nh = String.length msg and nn = String.length frag in
         let rec go i =
           i + nn <= nh && (String.sub msg i nn = frag || go (i + 1)) in
         nn = 0 || go 0)
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  bad "frobnicate t0, t1, t2" "unknown mnemonic";
  bad "add t0, t1" "expects";
  bad "lw t0, t1" "bad memory operand";
  bad "add x9, t1, t2" "bad register";
  bad "addi t0, t1, lots" "bad immediate";
  bad "j nowhere\nhalt" "undefined label";
  bad "xloop.zz t0, t1, 0" "unknown xloop pattern"

(* Round-trip: disassembling any compiled kernel and re-parsing it yields
   the identical program. *)
let test_parse_roundtrip_kernels () =
  List.iter
    (fun name ->
       let k = Xloops_kernels.Registry.find name in
       let c = Xloops_compiler.Compile.compile k.kernel in
       let text = Program.to_string c.program in
       let p2 = Parser.parse text in
       Alcotest.(check bool) (name ^ " roundtrip") true
         (programs_equal c.program p2))
    [ "war-om"; "sha-or"; "bfs-uc-db"; "mm-orm"; "rsort-ua" ]

let () =
  Alcotest.run "asm"
    [ ("builder",
       [ Alcotest.test_case "labels" `Quick test_labels;
         Alcotest.test_case "undefined label" `Quick test_undefined_label;
         Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
         Alcotest.test_case "li small" `Quick test_li_small;
         Alcotest.test_case "li large" `Quick test_li_large;
         Alcotest.test_case "li negative" `Quick test_li_negative_large;
         Alcotest.test_case "fresh labels" `Quick test_fresh_labels ]);
      ("layout",
       [ Alcotest.test_case "alloc" `Quick test_layout;
         Alcotest.test_case "overflow" `Quick test_layout_overflow ]);
      ("disasm", [ Alcotest.test_case "labels shown" `Quick
                     test_disasm_roundtrip ]);
      ("parser",
       [ Alcotest.test_case "loop" `Quick test_parse_loop;
         Alcotest.test_case "memory/amo" `Quick test_parse_memory_and_amo;
         Alcotest.test_case "xloop" `Quick test_parse_xloop;
         Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "kernel roundtrip" `Quick
           test_parse_roundtrip_kernels ]);
    ]

