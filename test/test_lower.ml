(* Operator-lowering semantics: for every Loopc binary operator, compile
   a kernel that applies it elementwise (c[j] = a[j] op b[j]) for both
   targets and check the simulated results against OCaml int32/float32
   reference semantics on random operands.  Also covers the aliasing
   corner cases of min/max lowering and the int<->float conversions. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config

let n = 32

(* -- integer operators --------------------------------------------------- *)

let int_ops : (string * Ast.binop * (int32 -> int32 -> int32)) list =
  let sh b = Int32.to_int b land 31 in
  [ ("add", Add, Int32.add);
    ("sub", Sub, Int32.sub);
    ("mul", Mul, Int32.mul);
    ("div", Div,
     (fun a b ->
        if b = 0l then -1l
        else if a = Int32.min_int && b = -1l then Int32.min_int
        else Int32.div a b));
    ("rem", Rem,
     (fun a b ->
        if b = 0l then a
        else if a = Int32.min_int && b = -1l then 0l
        else Int32.rem a b));
    ("and", And, Int32.logand);
    ("or", Or, Int32.logor);
    ("xor", Xor, Int32.logxor);
    ("shl", Shl, (fun a b -> Int32.shift_left a (sh b)));
    ("shr", Shr, (fun a b -> Int32.shift_right_logical a (sh b)));
    ("sar", Sar, (fun a b -> Int32.shift_right a (sh b)));
    ("lt", Lt, (fun a b -> if Int32.compare a b < 0 then 1l else 0l));
    ("le", Le, (fun a b -> if Int32.compare a b <= 0 then 1l else 0l));
    ("gt", Gt, (fun a b -> if Int32.compare a b > 0 then 1l else 0l));
    ("ge", Ge, (fun a b -> if Int32.compare a b >= 0 then 1l else 0l));
    ("eq", Eq, (fun a b -> if a = b then 1l else 0l));
    ("ne", Ne, (fun a b -> if a <> b then 1l else 0l));
    ("min", Min, (fun a b -> if Int32.compare a b <= 0 then a else b));
    ("max", Max, (fun a b -> if Int32.compare a b >= 0 then a else b)) ]

let elementwise_kernel op : Ast.kernel =
  { k_name = "op-test";
    arrays = [ { a_name = "a"; a_ty = I32; a_len = n };
               { a_name = "b"; a_ty = I32; a_len = n };
               { a_name = "c"; a_ty = I32; a_len = n } ];
    consts = [ ("n", n) ];
    k_body =
      [ Ast.for_ ~pragma:Unordered "j" (Int 0) (Var "n")
          [ Ast.Store ("c", Var "j",
                       Bin (op, Load ("a", Var "j"), Load ("b", Var "j")))
          ] ] }

let operands seed =
  let r = Xloops_kernels.Dataset.rng seed in
  Array.init n (fun i ->
      match i with
      | 0 -> 0l
      | 1 -> Int32.min_int
      | 2 -> Int32.max_int
      | 3 -> -1l
      | _ ->
        Int32.of_int
          ((Xloops_kernels.Dataset.next r lsl 3)
           lxor Xloops_kernels.Dataset.next r))

let run_op target op =
  let c = Compile.compile ~target (elementwise_kernel op) in
  let mem = Memory.create () in
  let a = operands 11 and b = operands 23 in
  Array.iteri (fun j v -> Memory.set_i32 mem (c.array_base "a" + 4 * j) v) a;
  Array.iteri (fun j v -> Memory.set_i32 mem (c.array_base "b" + 4 * j) v) b;
  ignore (Machine.ok_exn
            (Machine.simulate ~cfg:Config.io ~mode:Machine.Traditional
               c.program mem));
  (a, b, Array.init n (fun j -> Memory.get_i32 mem (c.array_base "c" + 4 * j)))

let test_int_op target (name, op, reference) () =
  let a, b, got = run_op target op in
  for j = 0 to n - 1 do
    let want = reference a.(j) b.(j) in
    if got.(j) <> want then
      Alcotest.failf "%s: %ld op %ld = %ld, want %ld" name a.(j) b.(j)
        got.(j) want
  done

(* -- float operators ------------------------------------------------------ *)

let f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let float_ops : (string * Ast.binop * (float -> float -> float)) list =
  [ ("fadd", Add, (fun a b -> f32 (a +. b)));
    ("fsub", Sub, (fun a b -> f32 (a -. b)));
    ("fmul", Mul, (fun a b -> f32 (a *. b)));
    ("fdiv", Div, (fun a b -> f32 (a /. b)));
    ("fmin", Min, Float.min);
    ("fmax", Max, Float.max) ]

let float_kernel op : Ast.kernel =
  { k_name = "fop-test";
    arrays = [ { a_name = "fa"; a_ty = F32; a_len = n };
               { a_name = "fb"; a_ty = F32; a_len = n };
               { a_name = "fc"; a_ty = F32; a_len = n } ];
    consts = [ ("n", n) ];
    k_body =
      [ Ast.for_ ~pragma:Unordered "j" (Int 0) (Var "n")
          [ Ast.Store ("fc", Var "j",
                       Bin (op, Load ("fa", Var "j"), Load ("fb", Var "j")))
          ] ] }

let test_float_op (name, op, reference) () =
  let c = Compile.compile ~target:Compile.xloops (float_kernel op) in
  let mem = Memory.create () in
  let fa = Xloops_kernels.Dataset.floats ~seed:31 ~n ~scale:50.0 in
  let fb = Xloops_kernels.Dataset.floats ~seed:41 ~n ~scale:50.0 in
  Array.iteri (fun j v -> Memory.set_f32 mem (c.array_base "fa" + 4 * j) v) fa;
  Array.iteri (fun j v -> Memory.set_f32 mem (c.array_base "fb" + 4 * j) v) fb;
  ignore (Machine.ok_exn
            (Machine.simulate ~cfg:Config.io_x ~mode:Machine.Specialized
               c.program mem));
  for j = 0 to n - 1 do
    let want = reference (f32 fa.(j)) (f32 fb.(j)) in
    let got = Memory.get_f32 mem (c.array_base "fc" + 4 * j) in
    if Float.abs (got -. want) > 1e-6 *. Float.max 1.0 (Float.abs want) then
      Alcotest.failf "%s[%d]: got %g want %g" name j got want
  done

(* -- min/max destination aliasing ---------------------------------------- *)

let test_minmax_aliasing () =
  (* x = min(y, x) and x = max(x, y): the branchy lowering must not
     clobber an operand before the compare reads it. *)
  let k : Ast.kernel =
    { k_name = "alias";
      arrays = [ { a_name = "out"; a_ty = I32; a_len = 4 } ];
      consts = [];
      k_body =
        [ Ast.Decl ("x", Int 10);
          Ast.Decl ("y", Int 3);
          Ast.Assign ("x", Bin (Min, Var "y", Var "x"));  (* x = 3 *)
          Ast.Store ("out", Int 0, Var "x");
          Ast.Assign ("x", Bin (Max, Var "x", Int 7));    (* x = 7 *)
          Ast.Store ("out", Int 1, Var "x");
          Ast.Assign ("y", Bin (Min, Var "y", Var "y"));  (* y = 3 *)
          Ast.Store ("out", Int 2, Var "y");
          Ast.Assign ("x", Bin (Max, Var "y", Var "x"));  (* x = 7 *)
          Ast.Store ("out", Int 3, Var "x") ] }
  in
  let c = Compile.compile k in
  let mem = Memory.create () in
  ignore (Machine.ok_exn
            (Machine.simulate ~cfg:Config.io ~mode:Machine.Traditional
               c.program mem));
  Alcotest.(check (array int)) "aliasing" [| 3; 7; 3; 7 |]
    (Memory.read_int_array mem ~addr:(c.array_base "out") ~n:4)

(* -- conversions ----------------------------------------------------------- *)

let test_conversions () =
  let k : Ast.kernel =
    { k_name = "cvt";
      arrays = [ { a_name = "fi"; a_ty = F32; a_len = 4 };
                 { a_name = "io_"; a_ty = I32; a_len = 4 } ];
      consts = [];
      k_body =
        [ Ast.Store ("fi", Int 0, Cvt_if (Int 7));
          Ast.Store ("fi", Int 1, Cvt_if (Int (-3)));
          Ast.Store ("io_", Int 0, Cvt_fi (Flt 9.9));
          Ast.Store ("io_", Int 1, Cvt_fi (Flt (-9.9))) ] }
  in
  let c = Compile.compile k in
  let mem = Memory.create () in
  ignore (Machine.ok_exn
            (Machine.simulate ~cfg:Config.io ~mode:Machine.Traditional
               c.program mem));
  Alcotest.(check (float 0.001)) "i->f" 7.0
    (Memory.get_f32 mem (c.array_base "fi"));
  Alcotest.(check (float 0.001)) "i->f neg" (-3.0)
    (Memory.get_f32 mem (c.array_base "fi" + 4));
  Alcotest.(check int) "f->i trunc" 9
    (Memory.get_int mem (c.array_base "io_"));
  Alcotest.(check int) "f->i trunc neg" (-9)
    (Memory.get_int mem (c.array_base "io_" + 4))

let () =
  let int_cases target label =
    List.map
      (fun ((name, _, _) as case) ->
         Alcotest.test_case (name ^ "/" ^ label) `Quick
           (test_int_op target case))
      int_ops
  in
  Alcotest.run "lower"
    [ ("int-ops-general", int_cases Compile.general "general");
      ("int-ops-xloops", int_cases Compile.xloops "xloops");
      ("float-ops",
       List.map
         (fun ((name, _, _) as case) ->
            Alcotest.test_case name `Quick (test_float_op case))
         float_ops);
      ("corners",
       [ Alcotest.test_case "min/max aliasing" `Quick test_minmax_aliasing;
         Alcotest.test_case "conversions" `Quick test_conversions ]);
    ]
