(* Fault-tolerant orchestration tests: the failure taxonomy and seeded
   retry/backoff ([Failure]), the crash-safe sweep journal ([Journal]),
   cache integrity (checksums, quarantine, tmp reaping), crash isolation
   in [Pool.run_each], and whole sweeps under injected infrastructure
   chaos — including the acceptance scenario (poisoned spec + stalling
   spec + bit-flipped blobs) and the kill-at-a-random-prefix /
   [--resume] property. *)

module E = Xloops.Experiments
module Run_spec = Xloops.Run_spec
module Run_cache = Xloops.Run_cache
module Pool = Xloops.Pool
module F = Xloops.Failure
module Journal = Xloops.Journal
module Chaos = Xloops.Chaos
module Registry = Xloops.Kernels.Registry
module Config = Xloops.Sim.Config
module Machine = Xloops.Sim.Machine
module Stats = Xloops.Sim.Stats

(* run_data comparison must ignore the wall clock and the cache-origin
   markers — the only fields that depend on how a result was obtained
   rather than on what was simulated. *)
let strip (rd : E.run_data) =
  { rd with
    E.stats =
      { rd.E.stats with Stats.wall_ns = 0; cache_hits = 0;
        cache_misses = 0 } }

let tmp_dir () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "xloops_sweep_test_%d_%d" (Unix.getpid ())
       (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF))

let tmp_file () = tmp_dir () ^ ".journal"

(* Every ".run" blob under a cache directory, sorted for determinism. *)
let run_blobs dir =
  let rec walk acc p =
    if Sys.is_directory p then
      Array.fold_left
        (fun acc name ->
           if name = Run_cache.quarantine_subdir then acc
           else walk acc (Filename.concat p name))
        acc (Sys.readdir p)
    else if Filename.check_suffix p ".run" then p :: acc
    else acc
  in
  List.sort compare (walk [] dir)

(* -- Failure taxonomy ---------------------------------------------------- *)

let test_classify () =
  let fuel = F.Sim (Machine.Out_of_fuel { pc = 0; insns = 1; cycle = 1 }) in
  Alcotest.(check string) "sim is permanent" "permanent"
    (F.severity_name (F.classify fuel));
  Alcotest.(check string) "check is permanent" "permanent"
    (F.severity_name
       (F.classify (F.Check { kernel = "k"; what = "w"; msg = "m" })));
  Alcotest.(check bool) "timeout is transient" true
    (F.is_transient (F.Timeout { elapsed_ms = 2; deadline_ms = 1 }));
  Alcotest.(check bool) "io is transient" true (F.is_transient (F.Io "x"));
  Alcotest.(check bool) "transient crash is transient" true
    (F.is_transient (F.Crash { exn = "e"; transient = true }));
  Alcotest.(check bool) "other crash is permanent" false
    (F.is_transient (F.Crash { exn = "e"; transient = false }))

let test_of_exn () =
  let roundtrip e = F.of_exn e in
  (match roundtrip (F.Check_failed { kernel = "k"; what = "w"; msg = "m" })
   with
   | F.Check { kernel = "k"; _ } -> ()
   | f -> Alcotest.failf "check_failed misclassified: %a" F.pp f);
  (match
     roundtrip
       (F.Sim_failed (Machine.Out_of_fuel { pc = 8; insns = 3; cycle = 4 }))
   with
   | F.Sim (Machine.Out_of_fuel { pc = 8; insns = 3; cycle = 4 }) -> ()
   | f -> Alcotest.failf "sim_failed misclassified: %a" F.pp f);
  (match roundtrip (F.Transient_crash "boom") with
   | F.Crash { transient = true; _ } -> ()
   | f -> Alcotest.failf "transient_crash misclassified: %a" F.pp f);
  (match roundtrip (Sys_error "disk") with
   | F.Io "disk" -> ()
   | f -> Alcotest.failf "sys_error misclassified: %a" F.pp f);
  (match roundtrip Exit with
   | F.Crash { transient = false; _ } -> ()
   | f -> Alcotest.failf "unknown exn misclassified: %a" F.pp f)

let test_backoff_deterministic () =
  let b attempt = F.backoff_ms ~seed:7 ~salt:"spec-a" ~attempt () in
  Alcotest.(check int) "same inputs same backoff" (b 1) (b 1);
  Alcotest.(check bool) "attempt 3 waits longer than attempt 1" true
    (b 3 > b 1);
  Alcotest.(check bool) "capped" true
    (F.backoff_ms ~cap_ms:100 ~seed:7 ~salt:"spec-a" ~attempt:30 () <= 100);
  let with_seed seed =
    F.backoff_ms ~seed ~salt:"spec-a" ~attempt:1 () in
  Alcotest.(check bool) "seed changes the jitter" true
    (List.exists (fun s -> with_seed s <> with_seed 0) [ 1; 2; 3; 4; 5 ])

let test_with_retries_transient () =
  let calls = ref 0 in
  let o =
    F.with_retries ~max_retries:3 ~backoff_base_ms:1 (fun () ->
        incr calls;
        if !calls < 3 then raise (F.Transient_crash "flaky");
        42)
  in
  Alcotest.(check bool) "eventually ok" true (o.F.result = Ok 42);
  Alcotest.(check int) "attempts counted" 3 o.F.attempts

let test_with_retries_permanent () =
  let calls = ref 0 in
  let o =
    F.with_retries ~max_retries:3 ~backoff_base_ms:1 (fun () ->
        incr calls;
        invalid_arg "always")
  in
  (match o.F.result with
   | Error (F.Crash { transient = false; _ }) -> ()
   | _ -> Alcotest.fail "expected a permanent crash");
  Alcotest.(check int) "no retry of permanent failures" 1 !calls

let test_with_retries_deadline () =
  let o =
    F.with_retries ~deadline_ms:1 (fun () -> Unix.sleepf 0.03; "late") in
  (match o.F.result with
   | Error (F.Timeout { deadline_ms = 1; _ }) -> ()
   | _ -> Alcotest.fail "expected a timeout");
  let o = F.with_retries ~deadline_ms:60_000 (fun () -> "fast") in
  Alcotest.(check bool) "fast run is ok" true (o.F.result = Ok "fast")

let test_with_retries_abort_escapes () =
  Alcotest.check_raises "abort propagates" (F.Abort "stop") (fun () ->
      ignore (F.with_retries (fun () -> raise (F.Abort "stop"))))

(* -- Journal ------------------------------------------------------------- *)

let dg s = Xloops.Digest_hex.of_digest (Digest.string s)

let digest =
  Alcotest.testable Xloops.Digest_hex.pp Xloops.Digest_hex.equal

let test_journal_roundtrip () =
  let path = tmp_file () in
  let j = Journal.start path in
  Journal.record j (dg "a");
  Journal.record j (dg "b");
  Journal.record j (dg "a");                     (* idempotent *)
  Alcotest.(check int) "two distinct digests" 2 (Journal.count j);
  Alcotest.(check bool) "member" true (Journal.member j (dg "a"));
  Journal.close j;
  Alcotest.(check (list digest)) "load returns them in order"
    [ dg "a"; dg "b" ] (Journal.load path);
  (* Resume keeps them; a fresh start wipes them. *)
  let j2 = Journal.start ~resume:true path in
  Alcotest.(check int) "resume preloads" 2 (Journal.preloaded j2);
  Journal.close j2;
  let j3 = Journal.start path in
  Alcotest.(check int) "fresh start is empty" 0 (Journal.count j3);
  Journal.close j3;
  Sys.remove path

let test_journal_torn_tail () =
  let path = tmp_file () in
  let j = Journal.start path in
  Journal.record j (dg "a");
  Journal.close j;
  (* Simulate a crash mid-append: a torn, newline-less final line. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc (String.sub (Xloops.Digest_hex.to_hex (dg "b")) 0 11);
  close_out oc;
  Alcotest.(check (list digest)) "torn tail skipped on load" [ dg "a" ]
    (Journal.load path);
  let j2 = Journal.start ~resume:true path in
  Alcotest.(check int) "torn tail dropped on resume" 1
    (Journal.preloaded j2);
  Journal.record j2 (dg "c");
  Journal.close j2;
  Alcotest.(check (list digest)) "appends after repair parse clean"
    [ dg "a"; dg "c" ] (Journal.load path);
  Sys.remove path

let test_journal_rejects_garbage () =
  (* Garbage can no longer reach [Journal.record] — it takes an abstract
     [Digest_hex.t] — so the validation now lives in [Digest_hex.of_hex]
     (the only way wire/journal strings become digests) and in [load],
     which skips undecodable lines instead of resurrecting them. *)
  Alcotest.(check bool) "of_hex rejects garbage" true
    (Result.is_error (Xloops.Digest_hex.of_hex "nope"));
  Alcotest.(check bool) "of_hex rejects uppercase hex" true
    (Result.is_error
       (Xloops.Digest_hex.of_hex
          (String.uppercase_ascii (Xloops.Digest_hex.to_hex (dg "a")))));
  let path = tmp_file () in
  let j = Journal.start path in
  Journal.record j (dg "a");
  Journal.close j;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "nope\n";
  close_out oc;
  Alcotest.(check (list digest)) "garbage line skipped on load" [ dg "a" ]
    (Journal.load path);
  Sys.remove path

(* -- Cache integrity ----------------------------------------------------- *)

let war_spec =
  Run_spec.make ~cfg:Config.io_x ~mode:Machine.Specialized "war-uc"

let test_cache_detects_corruption corrupt_kind () =
  let dir = tmp_dir () in
  let rd = Run_spec.execute war_spec in
  let key = Run_spec.cache_key war_spec in
  let c1 = Run_cache.create ~dir () in
  Run_cache.store_run c1 ~key rd;
  (match run_blobs dir with
   | [ blob ] ->
     Alcotest.(check bool) "fixture corrupted" true
       (Chaos.corrupt_file corrupt_kind blob)
   | blobs -> Alcotest.failf "expected one blob, found %d"
                (List.length blobs));
  let c2 = Run_cache.create ~dir () in
  Alcotest.(check bool) "corrupt blob reads as absent" true
    (Run_cache.find_run c2 ~key = None);
  Alcotest.(check int) "corruption counted" 1 (Run_cache.corrupt c2);
  Alcotest.(check int) "not a plain miss" 0 (Run_cache.misses c2);
  Alcotest.(check int) "blob quarantined" 1 (Run_cache.quarantined c2);
  Alcotest.(check (list string)) "blob removed from the live tree" []
    (run_blobs dir);
  (* The slot is reusable: store again, read back clean. *)
  Run_cache.store_run c2 ~key rd;
  let c3 = Run_cache.create ~dir () in
  Alcotest.(check bool) "restored blob round-trips" true
    (Run_cache.find_run c3 ~key = Some rd)

let test_cache_reaps_tmp () =
  let dir = tmp_dir () in
  let rd = Run_spec.execute war_spec in
  let key = Run_spec.cache_key war_spec in
  let c = Run_cache.create ~dir () in
  Run_cache.store_run c ~key rd;
  (* A killed writer leaves its temp file behind... *)
  let shard = Filename.dirname (List.hd (run_blobs dir)) in
  let orphan = Filename.concat shard "dead.run.tmp.1234" in
  let oc = open_out orphan in
  output_string oc "partial write";
  close_out oc;
  Alcotest.(check int) "one orphan reaped" 1 (Run_cache.reap_tmp c);
  Alcotest.(check bool) "orphan gone" false (Sys.file_exists orphan);
  Alcotest.(check int) "nothing left to reap" 0 (Run_cache.reap_tmp c);
  Alcotest.(check bool) "live blob untouched" true
    (Run_cache.find_run c ~key <> None)

(* -- Pool.run_each ------------------------------------------------------- *)

let test_run_each_isolates_crashes () =
  let outcomes =
    Pool.run_each ~jobs:4
      ~policy:{ Pool.default_policy with max_retries = 0 }
      (fun x -> if x = 3 then invalid_arg "poisoned" else x * x)
      [ 1; 2; 3; 4; 5 ]
  in
  let oks =
    List.filter_map
      (fun (o : int Pool.outcome) -> Result.to_option o.Pool.result)
      outcomes
  in
  Alcotest.(check (list int)) "healthy items survive, in order"
    [ 1; 4; 16; 25 ] oks;
  match (List.nth outcomes 2).Pool.result with
  | Error (F.Crash { transient = false; _ }) -> ()
  | _ -> Alcotest.fail "poisoned item should fail permanently"

let test_run_each_abort_propagates () =
  Alcotest.check_raises "abort escapes run_each" (F.Abort "injected")
    (fun () ->
       ignore
         (Pool.run_each ~jobs:2
            (fun x -> if x = 2 then raise (F.Abort "injected") else x)
            [ 1; 2; 3 ]))

(* -- The acceptance sweep ------------------------------------------------ *)

let kernels = [ "war-uc"; "kmeans-or" ]

let good_specs =
  List.concat_map
    (fun name ->
       [ Run_spec.make ~cfg:Config.io_x ~mode:Machine.Specialized name;
         Run_spec.make ~cfg:Config.io_x ~mode:Machine.Adaptive name ])
    kernels

(* A sweep containing one poisoned spec (unknown kernel — permanent),
   one stalling spec (blows the per-item deadline — transient, retried,
   still times out) and three bit-flipped cache blobs must complete,
   report exactly those two per-item failures, quarantine the corrupt
   blobs and reproduce the healthy results byte-identically. *)
let test_acceptance_sweep () =
  let serial = List.map (fun s -> strip (Run_spec.execute s)) good_specs in
  let dir = tmp_dir () in
  (* Cold sweep fills the cache with the healthy results... *)
  let cold = Run_cache.create ~dir () in
  let r0 =
    E.sweep ~jobs:1 (E.caching_engine ~cache:cold ()) good_specs in
  Alcotest.(check int) "cold sweep clean" 0 (List.length r0.E.sr_failures);
  (* ...then three of the four blobs rot on disk. *)
  let blobs = run_blobs dir in
  Alcotest.(check int) "four blobs stored" 4 (List.length blobs);
  List.iteri
    (fun i blob ->
       if i < 3 then
         Alcotest.(check bool) "blob corrupted" true
           (Chaos.corrupt_file Chaos.Blob_bitflip blob))
    blobs;
  (* The dirty sweep: healthy plan + poisoned spec + stalling spec. *)
  let poisoned =
    Run_spec.make ~cfg:Config.io_x ~mode:Machine.Specialized
      "no-such-kernel" in
  let stalling =
    Run_spec.make ~cfg:Config.io_x ~mode:Machine.Traditional "war-uc" in
  let plan = good_specs @ [ poisoned; stalling ] in
  let cache = Run_cache.create ~dir () in
  let inner = E.caching_engine ~cache () in
  let engine =
    { inner with
      E.run =
        (fun spec ->
           if spec.Run_spec.mode = Machine.Traditional then
             Unix.sleepf 0.08;
           inner.E.run spec) }
  in
  let policy =
    { Pool.default_policy with deadline_ms = Some 40; max_retries = 1 } in
  let report = E.sweep ~jobs:1 ~policy engine plan in
  Alcotest.(check int) "everything executed" (List.length plan)
    report.E.sr_executed;
  Alcotest.(check int) "exactly two failures" 2
    (List.length report.E.sr_failures);
  (* The poisoned spec fails permanently on the first attempt. *)
  (match
     List.find
       (fun o -> o.E.so_spec == poisoned)
       report.E.sr_outcomes
   with
   | { E.so_result = Some (Error f); so_attempts = 1; _ } ->
     Alcotest.(check string) "poisoned is permanent" "permanent"
       (F.severity_name (F.classify f))
   | _ -> Alcotest.fail "poisoned spec should fail once, permanently");
  (* The stalling spec times out, gets one retry, times out again. *)
  (match
     List.find
       (fun o -> o.E.so_spec == stalling)
       report.E.sr_outcomes
   with
   | { E.so_result = Some (Error (F.Timeout _)); so_attempts = 2; _ } -> ()
   | _ -> Alcotest.fail "stalling spec should time out twice");
  (* Corruption was detected and quarantined, and the healthy results
     are byte-identical to the serial reference. *)
  Alcotest.(check int) "three corrupt blobs detected" 3
    (Run_cache.corrupt cache);
  Alcotest.(check int) "three blobs quarantined" 3
    (Run_cache.quarantined cache);
  let healthy =
    List.filter_map
      (fun o ->
         match o.E.so_result with
         | Some (Ok rd) -> Some (strip rd)
         | _ -> None)
      report.E.sr_outcomes
  in
  Alcotest.(check bool) "healthy results byte-identical" true
    (healthy = serial)

(* A sweep under a seeded recoverable chaos plan (read errors, blob
   corruption, stalls, transient worker crashes — everything except the
   sweep abort) must still complete with zero failures and byte-identical
   results: stalls just wait, crashes retry, corrupt blobs re-simulate. *)
let test_chaos_sweep_byte_identical () =
  let serial = List.map (fun s -> strip (Run_spec.execute s)) good_specs in
  let dir = tmp_dir () in
  let chaos = Chaos.plan ~stall_ms:5 ~seed:2026 ~events:8 () in
  let cache = Run_cache.create ~dir ~chaos () in
  let engine = E.caching_engine ~cache () in
  let policy = { Pool.default_policy with backoff_base_ms = 1 } in
  let report = E.sweep ~jobs:1 ~policy ~chaos engine good_specs in
  Alcotest.(check int) "no failures under recoverable chaos" 0
    (List.length report.E.sr_failures);
  Alcotest.(check bool) "chaos actually injected" true
    (Chaos.injected_count chaos > 0);
  let got =
    List.filter_map
      (fun o ->
         match o.E.so_result with
         | Some (Ok rd) -> Some (strip rd)
         | _ -> None)
      report.E.sr_outcomes
  in
  Alcotest.(check bool) "results byte-identical under chaos" true
    (got = serial)

(* -- Kill + resume property ---------------------------------------------- *)

(* Kill a sweep after a chaos-chosen prefix, resume it, and the union of
   journal-skipped and re-executed work must equal the uninterrupted
   serial sweep — byte-identically, with only the unjournaled remainder
   re-executed. *)
let prop_interrupted_sweep_resumes =
  let n = List.length good_specs in
  QCheck.Test.make ~name:"killed sweep resumes byte-identically" ~count:8
    QCheck.(int_range 1 n)
    (fun kill_at ->
       let serial =
         List.map (fun s -> strip (Run_spec.execute s)) good_specs in
       let dir = tmp_dir () in
       let jpath = Filename.concat dir Journal.default_name in
       (* Phase 1: the sweep dies at the [kill_at]-th item. *)
       (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
       let j1 = Journal.start jpath in
       let cache1 = Run_cache.create ~dir () in
       let chaos = Chaos.explicit [ (kill_at, Chaos.Sweep_abort) ] in
       (try
          ignore
            (E.sweep ~jobs:1 ~journal:j1 ~chaos
               (E.caching_engine ~cache:cache1 ()) good_specs);
          QCheck.Test.fail_report "sweep should have aborted"
        with F.Abort _ -> ());
       Journal.close j1;
       let completed = Journal.load jpath in
       if List.length completed <> kill_at - 1 then
         QCheck.Test.fail_reportf
           "expected %d journaled completions, found %d" (kill_at - 1)
           (List.length completed);
       (* Phase 2: resume.  Only the remainder executes; results served
          from journal + cache equal the serial reference. *)
       let j2 = Journal.start ~resume:true jpath in
       let cache2 = Run_cache.create ~dir () in
       let engine = E.caching_engine ~cache:cache2 () in
       let report = E.sweep ~jobs:1 ~journal:j2 engine good_specs in
       Journal.close j2;
       if report.E.sr_skipped <> kill_at - 1 then
         QCheck.Test.fail_reportf "expected %d skipped, got %d"
           (kill_at - 1) report.E.sr_skipped;
       if report.E.sr_executed <> n - (kill_at - 1) then
         QCheck.Test.fail_reportf "expected %d executed, got %d"
           (n - (kill_at - 1)) report.E.sr_executed;
       if report.E.sr_failures <> [] then
         QCheck.Test.fail_report "resumed sweep should be clean";
       (* Assembly path: every spec resolves through the engine (memo
          for re-executed items, disk cache for journal-skipped ones). *)
       let final =
         List.map (fun s -> strip (engine.E.run s)) good_specs in
       final = serial)

let () =
  Alcotest.run "sweep"
    [ ("failure",
       [ Alcotest.test_case "classification" `Quick test_classify;
         Alcotest.test_case "of_exn" `Quick test_of_exn;
         Alcotest.test_case "backoff determinism" `Quick
           test_backoff_deterministic;
         Alcotest.test_case "retries transient" `Quick
           test_with_retries_transient;
         Alcotest.test_case "no retry of permanent" `Quick
           test_with_retries_permanent;
         Alcotest.test_case "deadline" `Quick test_with_retries_deadline;
         Alcotest.test_case "abort escapes" `Quick
           test_with_retries_abort_escapes ]);
      ("journal",
       [ Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
         Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
         Alcotest.test_case "rejects garbage" `Quick
           test_journal_rejects_garbage ]);
      ("cache-integrity",
       [ Alcotest.test_case "bit flip quarantined" `Quick
           (test_cache_detects_corruption Chaos.Blob_bitflip);
         Alcotest.test_case "truncation quarantined" `Quick
           (test_cache_detects_corruption Chaos.Blob_truncate);
         Alcotest.test_case "tmp reaping" `Quick test_cache_reaps_tmp ]);
      ("run-each",
       [ Alcotest.test_case "crash isolation" `Quick
           test_run_each_isolates_crashes;
         Alcotest.test_case "abort propagates" `Quick
           test_run_each_abort_propagates ]);
      ("sweep",
       [ Alcotest.test_case "acceptance: poisoned + stall + rot" `Quick
           test_acceptance_sweep;
         Alcotest.test_case "recoverable chaos is byte-identical" `Quick
           test_chaos_sweep_byte_identical;
         QCheck_alcotest.to_alcotest prop_interrupted_sweep_resumes ]);
    ]
