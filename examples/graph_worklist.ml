(* Worklist-driven graph traversal: the dynamic-bound pattern of
   Figure 1(e).  We build a small graph, write a BFS whose loop bound is
   the worklist tail pointer (raised by AMO pushes inside the loop), and
   watch the compiler classify it xloop.uc.db and the LPSU keep dispensing
   iterations as the bound grows.

   Run with:  dune exec examples/graph_worklist.exe *)

module C = Xloops.Compiler
module Sim = Xloops.Sim
module Memory = Xloops.Mem.Memory
module Insn = Xloops.Isa.Insn

(* A little diamond-ladder graph: node k links to k+1 and k+2. *)
let nodes = 40

let wl_len = nodes + 4

let kernel : C.Ast.kernel =
  let open C.Ast.Syntax in
  { k_name = "ladder-bfs";
    arrays = [ { a_name = "wl"; a_ty = I32; a_len = wl_len };
               { a_name = "tail"; a_ty = I32; a_len = 1 };
               { a_name = "seen"; a_ty = I32; a_len = nodes };
               { a_name = "hops"; a_ty = I32; a_len = nodes } ];
    consts = [ ("nodes", nodes) ];
    k_body =
      [ for_ ~pragma:Unordered "t" (i 0) ("tail".%[i 0])
          [ C.Ast.Decl ("node", "wl".%[v "t"]);
            (* wait for the producer to fill the slot (sentinel -1) *)
            C.Ast.While (v "node" < i 0,
                         [ C.Ast.Assign ("node", "wl".%[v "t"]) ]);
            C.Ast.Decl ("h", "hops".%[v "node"]);
            (* neighbours: node+1 and node+2 *)
            for_ "d" (i 1) (i 3)
              [ C.Ast.Decl ("nb", v "node" + v "d");
                C.Ast.If
                  (v "nb" < v "nodes",
                   [ C.Ast.Decl
                       ("old", C.Ast.Amo (Axchg, "seen", v "nb", i 1));
                     C.Ast.If
                       (v "old" = i 0,
                        [ C.Ast.Store ("hops", v "nb", v "h" + i 1);
                          C.Ast.Decl
                            ("slot", C.Ast.Amo (Aadd, "tail", i 0, i 1));
                          C.Ast.Store ("wl", v "slot", v "nb") ],
                        []) ],
                   []) ] ] ] }

let () =
  let c = C.Compile.compile ~target:C.Compile.xloops kernel in
  (* What did the compiler decide? *)
  Array.iter
    (fun insn ->
       match insn with
       | Insn.Xloop (pat, _, _, _) ->
         Fmt.pr "compiler classified the loop as: xloop.%a@."
           Insn.pp_xpat_suffix pat
       | _ -> ())
    c.program.insns;

  let mem = Memory.create () in
  for s = 0 to wl_len - 1 do
    Memory.set_int mem (c.array_base "wl" + (4 * s)) (-1)
  done;
  Memory.set_int mem (c.array_base "wl") 0;      (* seed node 0 *)
  Memory.set_int mem (c.array_base "tail") 1;
  Memory.set_int mem (c.array_base "seen") 1;

  let r = Sim.Machine.ok_exn
      (Sim.Machine.simulate ~cfg:Sim.Config.ooo2_x
         ~mode:Sim.Machine.Specialized c.program mem) in
  Fmt.pr "iterations executed: %d (worklist grew from 1 to %d)@."
    r.stats.iterations
    (Memory.get_int mem (c.array_base "tail"));
  Fmt.pr "hops: ";
  for v = 0 to nodes - 1 do
    Fmt.pr "%d " (Memory.get_int mem (c.array_base "hops" + (4 * v)))
  done;
  Fmt.pr "@.";
  (* Unordered claiming may label a node through either in-edge (and the
     drift compounds), so validate the labelling instead of exact
     distances: every node's count is at least the true shortest
     (ceil(k/2)) and is exactly one more than the in-neighbour that
     claimed it. *)
  let hop v = Memory.get_int mem (c.array_base "hops" + (4 * v)) in
  let ok = ref true in
  for v = 1 to nodes - 1 do
    let h = hop v in
    if h < (v + 1) / 2 then ok := false;
    let from_parent p = p >= 0 && hop p = h - 1 in
    if not (from_parent (v - 1) || from_parent (v - 2)) then ok := false
  done;
  Fmt.pr "hop labelling valid: %b@." !ok
