(* Quickstart: the XLOOPS hardware/software stack in one file.

   1. Write a loop kernel in Loopc with a `#pragma xloops` annotation.
   2. Compile it twice: for the plain general-purpose ISA and for the
      XLOOPS ISA (the compiler classifies the loop's inter-iteration
      dependence pattern and emits xloop/.xi instructions).
   3. Run the XLOOPS binary on a traditional in-order core, then on the
      same core augmented with the loop-pattern specialization unit.

   Run with:  dune exec examples/quickstart.exe *)

module C = Xloops.Compiler
module Sim = Xloops.Sim
module Memory = Xloops.Mem.Memory

let n = 256

(* saxpy over integers: y[i] = a*x[i] + y[i].  Element-wise, so the loop
   is `unordered` — iterations may run concurrently in any order. *)
let kernel : C.Ast.kernel =
  let open C.Ast.Syntax in
  { k_name = "saxpy";
    arrays = [ { a_name = "x"; a_ty = I32; a_len = n };
               { a_name = "y"; a_ty = I32; a_len = n } ];
    consts = [ ("n", n); ("a", 7) ];
    k_body =
      [ for_ ~pragma:Unordered "i" (i 0) (v "n")
          [ C.Ast.Store ("y", v "i", (v "a" * "x".%[v "i"]) + "y".%[v "i"])
          ] ] }

let fresh_memory (c : C.Compile.compiled) =
  let mem = Memory.create () in
  for j = 0 to n - 1 do
    Memory.set_int mem (c.array_base "x" + (4 * j)) j;
    Memory.set_int mem (c.array_base "y" + (4 * j)) (1000 - j)
  done;
  mem

let () =
  (* Compile for the XLOOPS ISA and show what the compiler did. *)
  let c = C.Compile.compile ~target:C.Compile.xloops kernel in
  Fmt.pr "── compiled program ─────────────────────────────@.";
  Fmt.pr "%s@." (Xloops.Asm.Program.to_string c.program);

  (* Run traditionally (xloop executes as a branch) on the in-order GPP. *)
  let mem_t = fresh_memory c in
  let trad = Sim.Machine.ok_exn
      (Sim.Machine.simulate ~cfg:Sim.Config.io
         ~mode:Sim.Machine.Traditional c.program mem_t) in

  (* Run specialized on the same GPP with a 4-lane LPSU attached. *)
  let mem_s = fresh_memory c in
  let spec = Sim.Machine.ok_exn
      (Sim.Machine.simulate ~cfg:Sim.Config.io_x
         ~mode:Sim.Machine.Specialized c.program mem_s) in

  (* Both executions produce the same memory. *)
  let ok = ref true in
  for j = 0 to n - 1 do
    let a = Memory.get_int mem_t (c.array_base "y" + (4 * j)) in
    let b = Memory.get_int mem_s (c.array_base "y" + (4 * j)) in
    if a <> b || a <> (7 * j) + (1000 - j) then ok := false
  done;

  Fmt.pr "── results ──────────────────────────────────────@.";
  Fmt.pr "traditional (io):    %6d cycles@." trad.cycles;
  Fmt.pr "specialized (io+x):  %6d cycles  (%.2fx speedup)@."
    spec.cycles
    (float_of_int trad.cycles /. float_of_int spec.cycles);
  Fmt.pr "iterations on LPSU:  %6d@." spec.stats.iterations;
  Fmt.pr "results match:       %b@." !ok
