(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sections IV and V) from the simulator, and runs Bechamel
   micro-benchmarks of the infrastructure itself.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --table2     # a single experiment
     dune exec bench/main.exe -- --quick      # Table II on 6 kernels
     dune exec bench/main.exe -- --micro      # Bechamel micro-benches only
     dune exec bench/main.exe -- --quick --jobs 4   # parallel sweep
     dune exec bench/main.exe -- --no-cache   # ignore _xloops_cache/

   The sweep is planned as a list of pure run specs, executed by a
   Domain worker pool (--jobs N, or $XLOOPS_JOBS), and every result is
   memoized through the content-addressed on-disk cache (--cache-dir,
   default _xloops_cache/; --no-cache disables it).  Tables and figures
   are assembled serially from the warmed engine, so stdout is
   byte-identical whatever the job count; pool and cache diagnostics go
   to stderr.

   The sweep itself is fault-tolerant: a crashing or deadline-blowing
   spec becomes a reported per-item failure (--max-retries,
   --deadline-ms), completed specs are journaled as they finish so
   a killed sweep restarts from where it left off (--resume), corrupt
   cache blobs are checksummed, quarantined and re-simulated, and a
   seeded chaos plan (--chaos-seed N, --chaos-events N, --chaos-abort)
   injects cache corruption, worker stalls/crashes and mid-sweep aborts
   to prove all of the above — under any of which stdout must remain
   byte-identical.

   With --server ADDR the warm phase runs through a persistent
   xloops_serve daemon instead of the in-process pool: specs cross the
   wire in their canonical encoding, the daemon schedules them across
   its own workers and cache, and results stream back.  Stdout stays
   byte-identical to the in-process sweep; a daemon kill/restart
   mid-plan costs only reconnection and the re-simulation its cache
   doesn't absorb.  The engine flags (--fuel, --watchdog-cycles,
   --deadline-ms, --max-retries, --jobs, --cache-dir/--no-cache, and
   their XLOOPS_* fallbacks) are the unified Cli_common set shared with
   the xloops_* tools.

   Shapes to look for (paper vs this reproduction is recorded in
   EXPERIMENTS.md):
   - Table II: uc kernels gain >=2.5x specialized on io; long-critical-path
     or kernels lose to the out-of-order hosts; om/ua kernels are limited
     by LSQ hazards and squashes (ksack-sm squashes far more than
     ksack-lg); uc.db kernels beat both OOO widths; adaptive tracks
     max(T, S).
   - Figure 9: multithreading helps sgemm; more lanes help bandwidth-bound
     kernels; covar-or is immune to everything (critical path).
   - Table V: ~40% area overhead at 4 lanes, roughly linear in lanes. *)

module E = Xloops.Experiments
module Run_spec = Xloops.Run_spec
module Run_cache = Xloops.Run_cache
module Pool = Xloops.Pool
module Failure = Xloops.Failure
module Journal = Xloops.Journal
module Chaos = Xloops.Chaos
module Registry = Xloops.Kernels.Registry
module Kernel = Xloops.Kernels.Kernel

let quick_kernels =
  [ "sgemm-uc"; "war-uc"; "kmeans-or"; "adpcm-or"; "ksack-sm-om";
    "bfs-uc-db" ]

(* One engine for the whole invocation: in-memory memoization over the
   shared on-disk result cache.  (This replaces the old private
   [Hashtbl] memo of whole evals — a second caching layer here would
   mask staleness bugs in the shared one.) *)
let engine = ref E.direct_engine

let evaluate (k : Kernel.t) = E.evaluate ~engine:!engine k

let section title =
  Fmt.pr "@.=== %s ===@.@." title

let kernels_for ~quick =
  if quick then List.map Registry.find quick_kernels else Registry.table2

let table2 ~quick () =
  section "Table II: application kernels and cycle-level results";
  Fmt.pr "%a" E.pp_table2_header ();
  List.iter
    (fun k -> Fmt.pr "%a" E.pp_table2_row (E.table2_row (evaluate k)))
    (kernels_for ~quick)

let fig5 ~quick () =
  section "Figure 5: speedup summary (normalized to serial on io)";
  Fmt.pr "%-14s %8s %8s %8s %8s@." "kernel" "io" "ooo2" "ooo4" "ooo2+x:S";
  List.iter
    (fun k ->
       let ev = evaluate k in
       let io = (E.host ev "io").base.cycles in
       let rel (r : E.run_data) = float_of_int io /. float_of_int r.cycles in
       Fmt.pr "%-14s %8.2f %8.2f %8.2f %8.2f@." k.Kernel.name
         1.0
         (rel (E.host ev "ooo/2").base)
         (rel (E.host ev "ooo/4").base)
         (rel (E.host ev "ooo/2").spec))
    (kernels_for ~quick)

let fig6 ~quick () =
  section "Figure 6: LPSU lane-cycle breakdown (specialized on io+x)";
  Fmt.pr "%a" E.pp_fig6
    (List.map (fun k -> E.fig6_row (evaluate k)) (kernels_for ~quick))

let fig7 ~quick () =
  section "Figure 7: specialized vs adaptive on ooo/4+x";
  Fmt.pr "%-14s %8s %8s@." "kernel" "S" "A";
  List.iter
    (fun k ->
       let ev = evaluate k in
       let h = E.host ev "ooo/4" in
       Fmt.pr "%-14s %8.2f %8.2f@." k.Kernel.name
         (E.speedup h h.spec) (E.speedup h h.adapt))
    (kernels_for ~quick)

let fig8 ~quick () =
  section "Figure 8: energy efficiency vs performance (S and A per host)";
  Fmt.pr "%a" E.pp_fig8
    (List.concat_map (fun k -> E.fig8_points (evaluate k))
       (kernels_for ~quick))

let fig9 () =
  section "Figure 9: LPSU design-space exploration (vs serial on ooo/4)";
  Fmt.pr "%a" E.pp_fig9 (E.fig9 ~engine:!engine ())

let table4 () =
  section "Table IV: case studies (hand-scheduled or / transformed uc)";
  Fmt.pr "%a" E.pp_table4 (E.table4 ~engine:!engine ())

let table5 () =
  section "Table V: VLSI area and cycle time";
  Fmt.pr "%a" Xloops.Vlsi.Area.pp_table_v (Xloops.Vlsi.Area.table_v ())

let fig10 () =
  section "Figure 10: VLSI-mode energy efficiency vs performance \
           (uc kernels, no .xi, uc-only LPSU on io)";
  Fmt.pr "%a" E.pp_fig10 (E.fig10 ~engine:!engine ())

(* -- Ablations ---------------------------------------------------------- *)

(* Ablation studies for the internal design decisions DESIGN.md calls
   out: inter-lane store-to-load forwarding (the paper's "more aggressive
   implementation" sketch), scan-phase cost, squash penalty, and the
   out-of-order window of the baseline model. *)

let spec_run name cfg =
  !engine.E.run
    (Run_spec.make ~cfg ~mode:Xloops.Sim.Machine.Specialized name)

let ablation () =
  section "Ablation: inter-lane store-to-load forwarding";
  Fmt.pr "%-14s %22s %26s@." "kernel" "baseline (cyc/viol)"
    "forwarding (cyc/viol/fwd)";
  List.iter
    (fun name ->
       let b = spec_run name Xloops.Sim.Config.io_x in
       let f = spec_run name Xloops.Sim.Config.io_x_fwd in
       Fmt.pr "%-14s %12d /%5d %14d /%5d /%4d@." name
         b.E.cycles b.E.stats.violations
         f.E.cycles f.E.stats.violations f.E.stats.lsq_forwards)
    [ "war-om"; "dynprog-om"; "ksack-sm-om"; "hsort-ua"; "rsort-ua" ];
  Fmt.pr "@.(forwarding confirms conflicting loads on war-om but amplifies@.squash cascades on tight chains like dynprog)@.";

  section "Ablation: scan-phase cost (cycles per scanned instruction)";
  Fmt.pr "%-14s" "kernel";
  List.iter (fun c -> Fmt.pr " %8s" (Printf.sprintf "scan=%d" c))
    [ 0; 1; 2; 4 ];
  Fmt.pr "@.";
  List.iter
    (fun name ->
       Fmt.pr "%-14s" name;
       List.iter
         (fun per ->
            let cfg = Xloops.Sim.Config.with_lpsu Xloops.Sim.Config.io
                (Printf.sprintf "+scan%d" per)
                ~lpsu:{ Xloops.Sim.Config.default_lpsu
                        with scan_per_insn = per } in
            Fmt.pr " %8d" (spec_run name cfg).E.cycles)
         [ 0; 1; 2; 4 ];
       Fmt.pr "@.")
    [ "symm-or"; "covar-or"; "war-uc" ];
  Fmt.pr "@.(kernels that re-specialize small inner loops are the ones@.sensitive to scan cost)@.";

  section "Ablation: squash penalty";
  Fmt.pr "%-14s" "kernel";
  List.iter (fun c -> Fmt.pr " %8s" (Printf.sprintf "sq=%d" c))
    [ 0; 2; 8; 16 ];
  Fmt.pr "@.";
  List.iter
    (fun name ->
       Fmt.pr "%-14s" name;
       List.iter
         (fun pen ->
            let cfg = Xloops.Sim.Config.with_lpsu Xloops.Sim.Config.io
                (Printf.sprintf "+sq%d" pen)
                ~lpsu:{ Xloops.Sim.Config.default_lpsu
                        with squash_penalty = pen } in
            Fmt.pr " %8d" (spec_run name cfg).E.cycles)
         [ 0; 2; 8; 16 ];
       Fmt.pr "@.")
    [ "ksack-sm-om"; "ksack-lg-om"; "hsort-ua" ];

  section "Ablation: dataset vs L1 capacity (element-wise compute)";
  (* The paper tailors datasets to fit the 16 KB L1 (Section V-A).
     Sweeping past that point shows what changes: with an L1-resident
     working set the lanes' win comes from overlapping the per-element
     compute (bounded by the shared port); once the data spills, misses
     block each lane and hold the single port, so throughput degrades for
     both machines — but the lanes still hide the in-order core's
     serialization of compute behind memory, so a win remains.  Absolute
     cycles grow ~5x either way, which is the comparison the paper's
     dataset sizing avoids contaminating Table II with. *)
  Fmt.pr "%-12s %12s %12s %10s@." "working set" "io (cyc)" "io+x (cyc)"
    "speedup";
  List.iter
    (fun n ->
       let kernel : Xloops.Compiler.Ast.kernel =
         let open Xloops.Compiler.Ast.Syntax in
         let x = "sa".%[v "j"] + "sb".%[v "j"] in
         let x = (x * i 3) lxor (x asr i 2) in
         let x = (x + (x lsr i 3)) land i 0xFFFFF in
         { k_name = "stream";
           arrays = [ { a_name = "sa"; a_ty = I32; a_len = n };
                      { a_name = "sb"; a_ty = I32; a_len = n };
                      { a_name = "sc"; a_ty = I32; a_len = n } ];
           consts = [ ("n", n) ];
           k_body =
             [ Xloops.Compiler.Ast.for_ ~pragma:Unordered "j" (i 0)
                 (v "n")
                 [ Xloops.Compiler.Ast.Store ("sc", v "j", x) ] ] }
       in
       let run cfg mode =
         let c = Xloops.Compiler.Compile.compile kernel in
         let mem = Xloops.Mem.Memory.create ~size:(1 lsl 21) () in
         (Xloops.Sim.Machine.ok_exn
            (Xloops.Sim.Machine.simulate ~cfg ~mode c.program mem))
           .Xloops.Sim.Machine.cycles
       in
       let t = run Xloops.Sim.Config.io Xloops.Sim.Machine.Traditional in
       let sp = run Xloops.Sim.Config.io_x Xloops.Sim.Machine.Specialized in
       Fmt.pr "%8d KB %12d %12d %10.2f@." (n * 12 / 1024) t sp
         (float_of_int t /. float_of_int sp))
    [ 256; 1024; 4096; 16384 ];

  section "Ablation: superscalar (dual-issue) lanes";
  (* The paper's future-work lane microarchitecture: the or kernels are
     "limited by the inter-iteration critical path", so extra
     intra-iteration issue bandwidth is where their headroom is. *)
  Fmt.pr "%-14s %12s %12s %10s@." "kernel" "1-wide (cyc)" "2-wide (cyc)"
    "gain";
  List.iter
    (fun name ->
       let b = spec_run name Xloops.Sim.Config.io_x in
       let w2 = spec_run name Xloops.Sim.Config.io_x_ss2 in
       Fmt.pr "%-14s %12d %12d %9.0f%%@." name b.E.cycles w2.E.cycles
         (100.0 *. (float_of_int b.E.cycles /. float_of_int w2.E.cycles
                    -. 1.0)))
    [ "covar-or"; "adpcm-or"; "sha-or"; "sgemm-uc"; "war-uc"; "kmeans-or" ];

  section "Ablation: out-of-order window (ooo/4 host, serial sgemm)";
  let k = Registry.find "sgemm-uc" in
  List.iter
    (fun window ->
       let cfg = { Xloops.Sim.Config.ooo4 with
                   name = Printf.sprintf "ooo/4/w%d" window;
                   gpp = { Xloops.Sim.Config.ooo4.gpp with
                           kind = Ooo { width = 4; window } } } in
       let r = E.run_checked ~target:Xloops.Compiler.Compile.general
           ~cfg ~mode:Xloops.Sim.Machine.Traditional k in
       Fmt.pr "window %3d: %8d cycles@." window r.E.cycles)
    [ 8; 16; 32; 64; 128 ]

(* -- CSV export ---------------------------------------------------------- *)

(* Machine-readable results for plotting: --csv writes results/*.csv with
   the Table II matrix and the Figure 8 scatter. *)

let csv ~quick () =
  let dir = "results" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name header rows =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc (header ^ "\n");
    List.iter (fun r -> output_string oc (r ^ "\n")) rows;
    close_out oc;
    Fmt.pr "wrote %s (%d rows)@." path (List.length rows)
  in
  let evals = List.map (fun k -> evaluate k) (kernels_for ~quick) in
  write "table2.csv"
    "kernel,suite,type,body_min,body_max,gpi_dyn,xg,host,T,S,A"
    (List.concat_map
       (fun ev ->
          let row = E.table2_row ev in
          List.map
            (fun (host, (t, s, a)) ->
               Printf.sprintf "%s,%s,%s,%d,%d,%d,%.4f,%s,%.4f,%.4f,%.4f"
                 row.E.t2_name row.t2_suite row.t2_type (fst row.t2_body)
                 (snd row.t2_body) row.t2_gpi row.t2_xg host t s a)
            row.t2_speedups)
       evals);
  write "fig8.csv" "kernel,host,mode,speedup,energy_eff,rel_power"
    (List.concat_map
       (fun ev ->
          List.map
            (fun p ->
               Printf.sprintf "%s,%s,%s,%.4f,%.4f,%.4f" p.E.f8_kernel
                 p.f8_host p.f8_mode p.f8_speedup p.f8_energy_eff
                 p.f8_rel_power)
            (E.fig8_points ev))
       evals);
  write "fig6.csv"
    ("kernel," ^ String.concat ","
       (List.map fst (snd (E.fig6_row (List.hd evals)))))
    (List.map
       (fun ev ->
          let name, cats = E.fig6_row ev in
          name ^ ","
          ^ String.concat ","
            (List.map (fun (_, f) -> Printf.sprintf "%.4f" f) cats))
       evals)

(* -- Extensions ---------------------------------------------------------- *)

let extension_runs =
  [ ("serial (general, io)",
     Run_spec.make ~target:Xloops.Compiler.Compile.general
       ~cfg:Xloops.Sim.Config.io ~mode:Xloops.Sim.Machine.Traditional
       "find-de");
    ("traditional (io)",
     Run_spec.make ~cfg:Xloops.Sim.Config.io
       ~mode:Xloops.Sim.Machine.Traditional "find-de");
    ("specialized (io+x)",
     Run_spec.make ~cfg:Xloops.Sim.Config.io_x
       ~mode:Xloops.Sim.Machine.Specialized "find-de");
    ("specialized (ooo/4+x)",
     Run_spec.make ~cfg:Xloops.Sim.Config.ooo4_x
       ~mode:Xloops.Sim.Machine.Specialized "find-de") ]

let extensions () =
  section "Extension: data-dependent exit (xloop.uc.de, paper future work)";
  Fmt.pr "%-28s %10s %12s@." "run" "cycles" "squashed";
  List.iter
    (fun (label, spec) ->
       let r = !engine.E.run spec in
       Fmt.pr "%-28s %10d %12d@." label r.E.cycles
         r.E.stats.squashed_insns)
    extension_runs;
  Fmt.pr "@.(iterations past the exit run control-speculatively on the lanes@.and are discarded — the squashed-instruction column)@."

(* -- Bechamel micro-benchmarks ---------------------------------------- *)

let micro () =
  section "Bechamel micro-benchmarks (simulator infrastructure)";
  let open Bechamel in
  let kernel name = Registry.find name in
  let bench_run name cfg mode k =
    Test.make ~name (Staged.stage (fun () ->
        ignore (Kernel.run ~cfg ~mode (kernel k))))
  in
  let tests =
    [ (* one per table/figure family: the work that regenerates it *)
      bench_run "table2:uc-specialized" Xloops.Sim.Config.io_x
        Xloops.Sim.Machine.Specialized "war-uc";
      bench_run "table2:or-specialized" Xloops.Sim.Config.io_x
        Xloops.Sim.Machine.Specialized "kmeans-or";
      bench_run "table2:om-speculation" Xloops.Sim.Config.io_x
        Xloops.Sim.Machine.Specialized "ksack-sm-om";
      bench_run "fig7:adaptive" Xloops.Sim.Config.ooo4_x
        Xloops.Sim.Machine.Adaptive "adpcm-or";
      bench_run "fig5:ooo-baseline" Xloops.Sim.Config.ooo4
        Xloops.Sim.Machine.Traditional "sgemm-uc";
      Test.make ~name:"compiler:sgemm"
        (Staged.stage (fun () ->
             ignore (Xloops.Compiler.Compile.compile
                       (kernel "sgemm-uc").Kernel.kernel)));
      Test.make ~name:"table5:vlsi-model"
        (Staged.stage (fun () -> ignore (Xloops.Vlsi.Area.table_v ()))) ]
  in
  let test = Test.make_grouped ~name:"xloops" tests in
  let clock = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ clock ] test in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Measure.run |] in
  let results = Analyze.all ols clock raw in
  Hashtbl.iter
    (fun name stats ->
       match Analyze.OLS.estimates stats with
       | Some (est :: _) -> Fmt.pr "%-36s %12.1f ns/run@." name est
       | _ -> Fmt.pr "%-36s (no estimate)@." name)
    results

(* -- Driver ------------------------------------------------------------ *)

(* Engine and orchestration flags are stripped here; everything else
   selects sections as before.  The orchestration knobs (--resume,
   --max-retries, --deadline-ms, the --chaos flags) only affect how the
   sweep executes and what goes to stderr — stdout stays byte-identical
   whatever the combination, which is what CI diffs. *)
type bench_opts = {
  journal_path : string option;     (* explicit --journal *)
  resume : bool;
  chaos_seed : int option;
  chaos_events : int;
  chaos_abort : bool;               (* include mid-sweep aborts *)
  server : string option;           (* --server ADDR: warm via daemon *)
}

(* The unified engine flags (--fuel, --watchdog-cycles, --deadline-ms,
   --max-retries, --jobs, --cache-dir, --no-cache, XLOOPS_* fallbacks)
   are parsed by the shared Cli_common code path; only the
   bench-specific orchestration knobs live here. *)
let parse_engine_args args =
  let eng = ref (Cli_common.default_engine_args ~max_retries:2 ()) in
  let o =
    ref { journal_path = None; resume = false; chaos_seed = None;
          chaos_events = 12; chaos_abort = false; server = None }
  in
  let int_arg flag n k =
    match int_of_string_opt n with
    | Some v when v >= 0 -> k v
    | _ -> Fmt.epr "bench: bad %s %s (want a non-negative int)@." flag n;
      exit 2
  in
  let rec go acc args =
    match Cli_common.consume_engine_flag eng args with
    | Some tl -> go acc tl
    | None ->
      (match args with
       | [] -> List.rev acc
       | "--journal" :: p :: tl ->
         o := { !o with journal_path = Some p }; go acc tl
       | "--resume" :: tl -> o := { !o with resume = true }; go acc tl
       | "--chaos-seed" :: n :: tl ->
         int_arg "--chaos-seed" n
           (fun v -> o := { !o with chaos_seed = Some v });
         go acc tl
       | "--chaos-events" :: n :: tl ->
         int_arg "--chaos-events" n
           (fun v -> o := { !o with chaos_events = v });
         go acc tl
       | "--chaos-abort" :: tl ->
         o := { !o with chaos_abort = true }; go acc tl
       | "--server" :: a :: tl -> o := { !o with server = Some a }; go acc tl
       | a :: tl -> go (a :: acc) tl)
  in
  let rest = go [] args in
  (!eng, !o, rest)

let () =
  let eng, opts, args =
    parse_engine_args (Array.to_list Sys.argv |> List.tl) in
  let jobs = eng.Cli_common.ea_jobs in
  let cache_dir = eng.Cli_common.ea_cache_dir in
  let deadline_ms = eng.Cli_common.ea_deadline_ms in
  let max_retries = eng.Cli_common.ea_max_retries in
  let server_addr =
    Option.map
      (fun a ->
         match Xloops_service.Protocol.parse_addr a with
         | Ok addr -> addr
         | Error msg -> Fmt.epr "bench: %s@." msg; exit 2)
      opts.server
  in
  let chaos =
    Option.map
      (fun seed ->
         Chaos.plan
           ~kinds:(if opts.chaos_abort then Chaos.all_kinds
                   else Chaos.recoverable_kinds)
           ~seed ~events:opts.chaos_events ())
      opts.chaos_seed
  in
  (* Startup hygiene (tmp reap, over-limit reap) and the optional shared
     fleet index all live in the one cache constructor the CLIs share. *)
  let cache = Cli_common.cache_of_engine ?chaos ~tag:"cache" eng in
  let journal =
    match opts.journal_path, cache_dir with
    | Some p, _ -> Some (Journal.start ~resume:opts.resume p)
    | None, Some dir ->
      Some (Journal.start ~resume:opts.resume
              (Filename.concat dir Journal.default_name))
    | None, None ->
      if opts.resume then
        Fmt.epr "bench: --resume without a cache or --journal has \
                 nothing to resume from; ignoring@.";
      None
  in
  (* In server mode the remote engine memoizes results fetched from the
     daemon and computes kernel metadata locally; otherwise the usual
     in-process memoizing/caching engine. *)
  let remote_warm =
    match server_addr with
    | None -> engine := E.caching_engine ?cache (); None
    | Some addr ->
      let eng', warm =
        Xloops_service.Client.engine ?cache ?deadline_ms ~max_retries addr
      in
      engine := eng';
      Some warm
  in
  let has f = List.mem f args in
  let quick = has "--quick" in
  let all = args = [] || (args = [ "--quick" ]) in
  let t0 = Unix.gettimeofday () in
  (* Plan the sweep: one pure run spec per needed simulation, deduped by
     digest, then executed by the worker pool so the assembly passes
     below only ever hit the warmed engine. *)
  let needs_evals =
    all
    || List.exists has
      [ "--table2"; "--fig5"; "--fig6"; "--fig7"; "--fig8"; "--csv" ]
  in
  let plan =
    List.concat
      [ (if needs_evals then
           List.concat_map E.specs_for (kernels_for ~quick)
         else []);
        (if all || has "--fig9" then E.fig9_specs () else []);
        (if all || has "--table4" then E.table4_specs () else []);
        (if all || has "--fig10" then E.fig10_specs () else []);
        (if all || has "--extensions" then List.map snd extension_runs
         else []) ]
  in
  let plan =
    let seen = Hashtbl.create 512 in
    List.filter
      (fun s ->
         let d = Run_spec.digest s in
         if Hashtbl.mem seen d then false
         else (Hashtbl.add seen d (); true))
      plan
  in
  (* Warm phase: execute the plan under the fault-tolerance stack.  A
     failing or timed-out spec is a per-item failure (reported below),
     not a crashed sweep; journaled specs from an interrupted run are
     skipped and served from the cache during assembly. *)
  if plan <> [] then begin
    match remote_warm with
    | Some warm ->
      (* Server mode: the daemon schedules the plan across its own
         workers and cache.  Journaled specs are not resubmitted; table
         assembly fetches them on demand and the daemon's cache makes
         that instant. *)
      let todo =
        match journal with
        | None -> plan
        | Some j ->
          List.filter
            (fun s -> not (Journal.member j (Run_spec.digest s)))
            plan
      in
      let skipped = List.length plan - List.length todo in
      if skipped > 0 then
        Fmt.epr "[sweep] resumed: %d of %d spec(s) already journaled@."
          skipped (List.length plan);
      Fmt.epr "[serve] warming %d spec(s) via %s@." (List.length todo)
        (Option.get opts.server);
      let failures = warm todo in
      Option.iter
        (fun j ->
           let failed = List.map (fun (s, _) -> Run_spec.digest s)
               failures in
           List.iter
             (fun s ->
                let d = Run_spec.digest s in
                if not (List.mem d failed) then Journal.record j d)
             todo)
        journal;
      if failures <> [] then begin
        List.iter
          (fun (s, e) ->
             Fmt.epr "[sweep] FAILED %s: %a@." (Run_spec.what s)
               Xloops_service.Protocol.pp_error e)
          failures;
        Fmt.epr "bench: %d of %d spec(s) failed; tables not assembled@."
          (List.length failures) (List.length plan);
        exit 1
      end
    | None ->
      if jobs > 1 then
        Fmt.epr "[pool] %d-run plan on %d domains (%d cores available)@."
          (List.length plan) jobs (Pool.available_cores ());
      let policy =
        { Pool.default_policy with
          deadline_ms;
          max_retries;
          backoff_seed = Option.value opts.chaos_seed ~default:0 }
      in
      match E.sweep ~jobs ~policy ?journal ?chaos !engine plan with
      | exception Failure.Abort msg ->
        (* The journal already holds every completed spec (fsync'd), so a
           rerun with --resume picks up exactly where this died. *)
        Option.iter
          (fun j -> Fmt.epr "[journal] %a@." Journal.pp_counters j) journal;
        Fmt.epr "bench: sweep aborted: %s (rerun with --resume)@." msg;
        exit 3
      | report ->
        if report.E.sr_skipped > 0 then
          Fmt.epr "[sweep] resumed: %d of %d spec(s) already journaled@."
            report.E.sr_skipped (List.length plan);
        Option.iter
          (fun c -> Fmt.epr "[chaos] %d event(s) injected@."
              (Chaos.injected_count c))
          chaos;
        if report.E.sr_failures <> [] then begin
          List.iter
            (fun f -> Fmt.epr "[sweep] FAILED %a@." E.pp_sweep_failure f)
            report.E.sr_failures;
          Fmt.epr "bench: %d of %d spec(s) failed; tables not assembled@."
            (List.length report.E.sr_failures) (List.length plan);
          exit 1
        end
  end;
  if all || has "--table2" then table2 ~quick ();
  if all || has "--fig5" then fig5 ~quick ();
  if all || has "--fig6" then fig6 ~quick ();
  if all || has "--fig7" then fig7 ~quick ();
  if all || has "--fig8" then fig8 ~quick ();
  if all || has "--fig9" then fig9 ();
  if all || has "--table4" then table4 ();
  if all || has "--table5" then table5 ();
  if all || has "--fig10" then fig10 ();
  if has "--ablation" then ablation ();
  if has "--csv" then csv ~quick ();
  if all || has "--extensions" then extensions ();
  if has "--micro" then micro ();
  Option.iter
    (fun c -> Fmt.epr "[cache] %a@." Run_cache.pp_counters c) cache;
  Option.iter
    (fun j -> Fmt.epr "[journal] %a@." Journal.pp_counters j; Journal.close j)
    journal;
  Fmt.epr "[bench completed in %.1f s, jobs=%d]@."
    (Unix.gettimeofday () -. t0) jobs
