(* service_bench: batch latency and throughput of the simulation
   service tier, scenario by scenario — the same spec plan executed

     1. in-process (no daemon, no sockets),
     2. through one xloops_serve daemon with a cold private cache,
     3. through a 2-shard fleet behind the balancer proxy, cold, the
        shards coordinating via the mmap'd shared cache index, and
     4. through the same fleet again, warm — every spec must be a
        shared-cache hit.

   Emits BENCH_service.json (one row object per line, the same
   skimmable-but-parseable shape as BENCH_interp.json).  With --check,
   gates for CI:

     - the warm fleet pass recomputes nothing (cache misses delta 0,
       hits delta = spec count), and
     - the cold 2-shard fleet sustains >= 1.5x the single-daemon cold
       specs/sec (2x compute, so 1.5x leaves headroom for fan-out and
       merge overhead).

     dune exec bench/service_bench.exe                  # table + JSON
     dune exec bench/service_bench.exe -- --check       # CI gates
     dune exec bench/service_bench.exe -- --repeat 3 *)

module P = Xloops_service.Protocol
module Server = Xloops_service.Server
module Proxy = Xloops_service.Proxy
module Shard = Xloops_service.Shard
module Client = Xloops_service.Client
module Run_spec = Xloops.Run_spec
module Run_cache = Xloops.Run_cache
module Cache_index = Xloops.Cache_index
module Config = Xloops.Sim.Config
module Machine = Xloops.Sim.Machine
module Stats = Xloops.Sim.Stats

(* -- The plan ------------------------------------------------------------ *)

(* The quick-sweep kernels crossed with two host configs and two
   machine modes: 24 distinct specs, enough work per spec that the
   scenarios measure simulation throughput rather than socket chatter. *)
let plan =
  let kernels =
    [ "sgemm-uc"; "war-uc"; "kmeans-or"; "adpcm-or"; "ksack-sm-om";
      "bfs-uc-db" ]
  in
  List.concat_map
    (fun name ->
       List.concat_map
         (fun cfg ->
            List.map
              (fun mode -> Run_spec.make ~cfg ~mode name)
              [ Machine.Specialized; Machine.Traditional ])
         [ Config.io_x; Config.ooo2_x ])
    kernels

let strip (rd : Run_spec.run_data) =
  { rd with
    Run_spec.stats =
      { rd.Run_spec.stats with Stats.wall_ns = 0; cache_hits = 0;
        cache_misses = 0 } }

let tmp_dir tag =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xloops_svc_bench_%s_%d" tag (Unix.getpid ()))
  in
  (match Unix.mkdir d 0o755 with
   | () -> ()
   | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let die fmt = Fmt.kstr (fun m -> Fmt.epr "service_bench: %s@." m; exit 1) fmt

(* -- Scenarios ----------------------------------------------------------- *)

type row = {
  scenario : string;
  wall_ms : float;      (* one batch, end to end *)
  specs_per_sec : float;
  ms_per_spec : float;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let row scenario n wall_ms =
  { scenario; wall_ms; specs_per_sec = float_of_int n /. (wall_ms /. 1000.);
    ms_per_spec = wall_ms /. float_of_int n }

(* Every scenario must agree with the in-process run — a fast wrong
   answer is not a benchmark result. *)
let check_results scenario local results =
  if Array.length results <> List.length local then
    die "%s: %d results for %d specs" scenario (Array.length results)
      (List.length local);
  List.iteri
    (fun i rd ->
       match results.(i) with
       | Ok rd' when strip rd' = strip rd -> ()
       | Ok _ -> die "%s: spec %d disagrees with the in-process run" scenario i
       | Error e ->
         die "%s: spec %d failed: %s" scenario i
           (Fmt.str "%a" P.pp_error e))
    local

(* One batch end to end: a small chunk size would insert client-side
   barriers between chunks and measure those instead of the tier. *)
let run_plan scenario local addr =
  match Client.run_plan ~chunk:(List.length plan) addr plan with
  | Error m -> die "%s: %s" scenario m
  | Ok results -> check_results scenario local results

let bench_local () =
  time (fun () -> List.map Run_spec.execute plan)

(* Daemons are forked as real processes — hosting several worker
   domains in the bench process would serialize them on the runtime's
   stop-the-world minor GC and measure the GC, not the fleet.  (The
   deployed fleet is separate xloops_serve processes; cross-process
   coordination is exactly what the mmap'd index is for.)  The child
   reports its kernel-picked port over a pipe.  Forks must precede any
   thread creation in this process (the proxy comes after). *)
let spawn_daemon ?index_path ~dir tag =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let index = Option.map Cache_index.openf index_path in
    let cache = Run_cache.create ~dir ?index () in
    let srv =
      Server.start
        (Server.config ~addr:(P.Tcp ("127.0.0.1", 0)) ~workers:1 ~cache
           ~banner:tag ())
    in
    let port =
      match Server.bound_addr srv with P.Tcp (_, p) -> p | _ -> 0
    in
    let oc = Unix.out_channel_of_descr w in
    Printf.fprintf oc "%d\n%!" port;
    Server.wait srv;
    exit 0
  | pid ->
    Unix.close w;
    let ic = Unix.in_channel_of_descr r in
    let port =
      match int_of_string_opt (String.trim (input_line ic)) with
      | Some p when p > 0 -> p
      | _ -> die "%s: daemon failed to report a port" tag
      | exception End_of_file -> die "%s: daemon died before binding" tag
    in
    close_in ic;
    (pid, P.Tcp ("127.0.0.1", port))

let kill_daemon (pid, _) =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())

(* A fresh worker domain pays a one-time per-domain warm-up (~100 ms:
   lazy tier tables, allocator ramp) on its first simulation.  That is
   daemon cold-boot, not service throughput — flush it with one spec
   that is not in the measured plan (distinct fuel, distinct digest) so
   the plan itself still runs cache-cold. *)
let warm_daemon addr =
  let w =
    Run_spec.make ~fuel:777_777 ~cfg:Config.io_x ~mode:Machine.Specialized
      "war-uc"
  in
  match Client.run_plan addr [ w ] with
  | Ok _ -> ()
  | Error m -> die "daemon warm-up: %s" m

let bench_single local =
  let d = spawn_daemon ~dir:(tmp_dir "single") "bench-single" in
  Fun.protect ~finally:(fun () -> kill_daemon d)
    (fun () ->
       warm_daemon (snd d);
       let ((), ms) = time (fun () -> run_plan "daemon-1" local (snd d)) in
       ms)

(* The fleet: two 1-worker daemon processes over one blob dir and one
   shared mmap'd index, fronted by an in-process proxy.  Returns
   (cold_ms, warm_ms, warm hit/miss deltas, index introspection). *)
let bench_fleet local =
  let dir = tmp_dir "fleet" in
  let index_path = Filename.concat dir "index" in
  let d1 = spawn_daemon ~index_path ~dir "bench-shard-0" in
  let d2 = spawn_daemon ~index_path ~dir "bench-shard-1" in
  let shards = Shard.even [ snd d1; snd d2 ] in
  let px =
    Proxy.start
      (Proxy.config ~addr:(P.Tcp ("127.0.0.1", 0)) ~shards ~chunk:32
         ~banner:"bench-proxy" ())
  in
  let index = Cache_index.openf index_path in
  Fun.protect
    ~finally:(fun () ->
      Proxy.stop px; kill_daemon d1; kill_daemon d2; Cache_index.close index)
    (fun () ->
       warm_daemon (snd d1);
       warm_daemon (snd d2);
       let addr = Proxy.bound_addr px in
       let fleet_stats () =
         match Client.connect addr with
         | Error e -> die "fleet stats: %a" Client.pp_connect_error e
         | Ok s ->
           Fun.protect ~finally:(fun () -> Client.close s)
             (fun () ->
                match Client.stats s with
                | Ok st -> st
                | Error _ -> die "fleet stats query failed")
       in
       let ((), cold_ms) =
         time (fun () -> run_plan "fleet-2-cold" local addr)
       in
       let st0 = fleet_stats () in
       let ((), warm_ms) =
         time (fun () -> run_plan "fleet-2-warm" local addr)
       in
       let st1 = fleet_stats () in
       let hits = st1.P.cache_hits - st0.P.cache_hits
       and misses = st1.P.cache_misses - st0.P.cache_misses in
       (cold_ms, warm_ms, hits, misses,
        (Cache_index.live_entries index, Cache_index.used_bytes index,
         Cache_index.evictions index)))

(* -- Output -------------------------------------------------------------- *)

let cpus = Domain.recommended_domain_count ()

let emit_json path n rows (warm_hits, warm_misses) fleet_speedup warm_speedup
    (idx_live, idx_bytes, idx_evicted) =
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": 1,\n";
  pf "  \"specs\": %d,\n" n;
  pf "  \"cpus\": %d,\n" cpus;
  pf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
       pf "    {\"scenario\": %S, \"wall_ms\": %.1f, \"specs_per_sec\": \
           %.1f, \"ms_per_spec\": %.2f}%s\n"
         r.scenario r.wall_ms r.specs_per_sec r.ms_per_spec
         (if i = List.length rows - 1 then "" else ","))
    rows;
  pf "  ],\n";
  pf "  \"warm_hits\": %d,\n" warm_hits;
  pf "  \"warm_misses\": %d,\n" warm_misses;
  pf "  \"fleet_speedup_vs_daemon\": %.2f,\n" fleet_speedup;
  pf "  \"warm_speedup_vs_cold\": %.2f,\n" warm_speedup;
  pf "  \"shared_index\": {\"live\": %d, \"used_bytes\": %d, \
      \"evictions\": %d}\n"
    idx_live idx_bytes idx_evicted;
  pf "}\n";
  close_out oc

let () =
  let out = ref "BENCH_service.json" in
  let check = ref false in
  let repeat = ref 1 in
  Arg.parse
    [ ("--json", Arg.Set_string out,
       "FILE  JSON output (default BENCH_service.json)");
      ("-o", Arg.Set_string out, "FILE  alias for --json");
      ("--check", Arg.Set check,
       "  gate: warm pass recomputes nothing; fleet >= 1.5x daemon");
      ("--repeat", Arg.Set_int repeat,
       "N  run each scenario N times, keep the best (default 1)") ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "service_bench [--check] [--json FILE] [--repeat N]";
  let n = List.length plan in
  let best f =
    let rec go best k =
      if k = 0 then best else go (Float.min best (f ())) (k - 1)
    in
    go (f ()) (!repeat - 1)
  in
  (* local first: its results are the reference every scenario is
     checked against *)
  let (local, local_ms0) = bench_local () in
  let local_ms =
    best (fun () -> let (_, ms) = bench_local () in ms) |> Float.min local_ms0
  in
  let single_ms = best (fun () -> bench_single local) in
  (* fleet scenarios share warm-up state, so repeat the whole bundle
     and keep the fastest cold pass's bundle *)
  let (cold_ms, warm_ms, hits, misses, idx) =
    let rec go best k =
      if k = 0 then best
      else
        let (c, _, _, _, _) as r = bench_fleet local in
        let (bc, _, _, _, _) = best in
        go (if c < bc then r else best) (k - 1)
    in
    go (bench_fleet local) (!repeat - 1)
  in
  let rows =
    [ row "in-process" n local_ms; row "daemon-1" n single_ms;
      row "fleet-2-cold" n cold_ms; row "fleet-2-warm" n warm_ms ]
  in
  let fleet_speedup = single_ms /. cold_ms in
  let warm_speedup = cold_ms /. warm_ms in
  Fmt.pr "service tier, %d specs per batch:@." n;
  Fmt.pr "  %-14s %9s %11s %10s@." "scenario" "wall_ms" "specs/sec"
    "ms/spec";
  List.iter
    (fun r ->
       Fmt.pr "  %-14s %9.1f %11.1f %10.2f@." r.scenario r.wall_ms
         r.specs_per_sec r.ms_per_spec)
    rows;
  Fmt.pr "  fleet vs daemon (cold): %.2fx; warm vs cold: %.2fx@."
    fleet_speedup warm_speedup;
  Fmt.pr "  warm pass: %d hit(s), %d miss(es); shared index: %d live, \
          %d bytes@."
    hits misses (let (l, _, _) = idx in l) (let (_, b, _) = idx in b);
  emit_json !out n rows (hits, misses) fleet_speedup warm_speedup idx;
  Fmt.pr "  wrote %s@." !out;
  if !check then begin
    if misses <> 0 then
      die "CHECK FAILED: warm fleet pass recomputed %d spec(s)" misses;
    if hits < n then
      die "CHECK FAILED: warm pass hit %d of %d specs" hits n;
    (* The cold-scaling floor needs two cores to mean anything: two
       shard processes on one CPU timeshare the same core, so the gate
       degrades to the fleet's other lever, the shared cache tier. *)
    if cpus >= 2 then begin
      if fleet_speedup < 1.5 then
        die "CHECK FAILED: fleet %.2fx daemon-1 cold (floor 1.5x, %d cpus)"
          fleet_speedup cpus
    end
    else begin
      let warm_vs_daemon = single_ms /. warm_ms in
      if warm_vs_daemon < 1.5 then
        die "CHECK FAILED: warm fleet %.2fx daemon-1 (floor 1.5x, 1 cpu)"
          warm_vs_daemon;
      Fmt.pr "  note: 1 cpu — cold-scaling floor skipped, gated the \
              shared-cache tier instead@."
    end;
    Fmt.pr "  CHECK OK: zero warm recomputes, fleet cold %.2fx / warm \
            %.2fx vs daemon@."
      fleet_speedup (single_ms /. warm_ms)
  end
