(* Interpreter micro-benchmark: host-side throughput (MIPS) and
   allocation rate (bytes/instruction) of the functional executor, per
   execution tier, on a synthetic straight-line kernel and a few
   representative compiled kernels.

   Usage:
     dune exec bench/micro.exe                   # table + BENCH_interp.json
     dune exec bench/micro.exe -- --check        # also enforce the committed
                                                 # bytes/insn + MIPS gates
     dune exec bench/micro.exe -- --tier threaded --check
     dune exec bench/micro.exe -- --repeat 5 --json out.json
     dune exec bench/micro.exe -- --profile-pairs
     dune exec bench/micro.exe -- --diff-schema BENCH_interp.json out.json

   MIPS numbers are host- and load-dependent (the table reports the best
   of [--repeat] runs); bytes/insn is deterministic, which is why the
   --check regression gate is primarily on allocation.  The MIPS gate is
   deliberately loose: an absolute floor far below any healthy host,
   plus a relative floor (threaded must beat predecode) that is
   host-independent.  --profile-pairs is the static superop profiler:
   it counts dynamic adjacent micro-op class pairs over the 25-kernel
   registry and reports what fraction of dispatches the threaded tier's
   fusion rules cover — the data the rule set was chosen against. *)

module B = Xloops.Asm.Builder
module Program = Xloops.Asm.Program
module Memory = Xloops.Mem.Memory
module Exec = Xloops.Sim.Exec
module Tier = Xloops.Sim.Tier
module Threaded = Xloops.Sim.Threaded
module Registry = Xloops.Kernels.Registry
module Kernel = Xloops.Kernels.Kernel
module Compile = Xloops.Compiler.Compile

(* Pre-optimization reference, measured with the same workloads on the
   same host immediately before the zero-allocation interpreter core
   landed (boxed registers, fresh event record and memory closures per
   step).  Kept for the speedup column of BENCH_interp.json. *)
let baseline = [
  (* name, MIPS, bytes/insn *)
  "straightline", 55.0, 168.9;
  "sgemm-uc", 52.0, 147.4;
  "war-uc", 39.0, 167.1;
  "bfs-uc-db", 38.0, 118.8;
  "adpcm-or", 49.0, 144.5;
]

(* Committed allocation budgets in bytes per dynamic instruction; a
   regression past these fails --check (and CI).  The threaded tier is
   gated at (effectively) zero: it has no event scratch and no boxed
   values on any path, so any allocation is a design regression.  The
   predecode tier's residue is the boxed int32s crossing the [mem_iface]
   closure boundary on loads (the LSQ-overlay interface is int32-typed);
   budgets are ~2x the values measured at commit time.  The ref tier
   legitimately allocates (int32 register views); its loose budget only
   catches catastrophic drift. *)
let alloc_budget ~(tier : Tier.t) name =
  match tier with
  | Tier.Ref -> Some 200.0
  | Tier.Predecode ->
    List.assoc_opt name
      [ "straightline", 0.10;
        "sgemm-uc", 1.00;
        "war-uc", 2.00;
        "bfs-uc-db", 2.00;
        "adpcm-or", 0.50 ]
  | Tier.Threaded ->
    (* one budget for all workloads: nothing on the tier may allocate *)
    Some 0.05

(* Absolute MIPS floors: far below a healthy run on any plausible host
   (the threaded tier measures several hundred MIPS locally), so they
   catch order-of-magnitude regressions — an accidental re-compile per
   run, a debug path left on — without flaking on slow CI runners.  The
   host-independent gate is the relative floor in [check]: threaded
   must beat predecode on the dispatch-bound workload. *)
let mips_floor ~(tier : Tier.t) name =
  match tier, name with
  | Tier.Threaded, "straightline" -> Some 100.0
  | Tier.Predecode, "straightline" -> Some 40.0
  | _ -> None

(* threaded must be at least this much faster than predecode on the
   pure-dispatch workload (both measured in the same process) *)
let relative_floor = 1.2
let relative_workload = "straightline"

(* 16 dependent adds + decrement + branch per iteration: pure register
   ALU work, the worst case for interpreter dispatch overhead. *)
let straightline ~iters =
  let b = B.create () in
  B.li b 8 1;
  B.li b 9 iters;
  B.li b 10 0;
  B.label b "top";
  for _ = 0 to 15 do B.add b 10 10 8 done;
  B.addi b 9 9 (-1);
  B.bne b 9 0 "top";
  B.halt b;
  B.assemble b

type sample = {
  s_name : string;
  s_tier : Tier.t;
  s_insns : int;
  s_mips : float;          (* best of the repeats *)
  s_bytes_per_insn : float;
}

let measure ~repeat ~tier name prog mem_of =
  let run = Tier.run_serial_with tier in
  (* Warm-up run: predecode/compile memos, branch-predictable GC state. *)
  (match run prog (mem_of ()) with
   | Ok _ -> ()
   | Error stop -> Fmt.failwith "%s: %a" name Exec.pp_stop stop);
  let best_mips = ref 0.0 and bytes = ref 0.0 and insns = ref 0 in
  for _ = 1 to repeat do
    let mem = mem_of () in
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    (match run prog mem with
     | Ok r ->
       let dt = Unix.gettimeofday () -. t0 in
       let da = Gc.allocated_bytes () -. a0 in
       insns := r.Exec.dynamic_insns;
       best_mips :=
         Float.max !best_mips
           (float_of_int r.Exec.dynamic_insns /. dt /. 1e6);
       bytes := da /. float_of_int r.Exec.dynamic_insns
     | Error stop -> Fmt.failwith "%s: %a" name Exec.pp_stop stop)
  done;
  { s_name = name; s_tier = tier; s_insns = !insns; s_mips = !best_mips;
    s_bytes_per_insn = !bytes }

let kernel_workload name =
  let k = Registry.find name in
  let c = Compile.compile k.Kernel.kernel in
  (c.Compile.program,
   fun () ->
     let mem = Memory.create () in
     k.Kernel.init c.Compile.array_base mem;
     mem)

(* -- JSON emission and schema diff ------------------------------------- *)

(* One row object per line: BENCH_interp.json is both human-skimmable
   and trivially re-parseable by [diff_schema] below without a JSON
   dependency. *)
let emit_json path samples =
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n  \"schema\": 2,\n  \"workloads\": [\n";
  List.iteri
    (fun i s ->
       pf "    {\"name\": %S, \"tier\": %S, \"insns\": %d, \
           \"mips\": %.2f, \"insns_per_sec\": %.0f, \
           \"bytes_per_insn\": %.2f"
         s.s_name (Tier.name s.s_tier) s.s_insns s.s_mips
         (s.s_mips *. 1e6) s.s_bytes_per_insn;
       (match alloc_budget ~tier:s.s_tier s.s_name with
        | Some b -> pf ", \"alloc_budget\": %.2f" b
        | None -> ());
       (match mips_floor ~tier:s.s_tier s.s_name with
        | Some f -> pf ", \"mips_floor\": %.1f" f
        | None -> ());
       (match s.s_tier,
              List.find_opt (fun (n, _, _) -> n = s.s_name) baseline with
        | (Tier.Predecode | Tier.Threaded), Some (_, bm, bb) ->
          pf ", \"baseline_mips\": %.2f, \"baseline_bytes_per_insn\": %.2f, \
              \"speedup\": %.2f, \"alloc_ratio\": %.4f"
            bm bb (s.s_mips /. bm) (s.s_bytes_per_insn /. bb)
        | _ -> ());
       pf "}%s\n" (if i = List.length samples - 1 then "" else ","))
    samples;
  pf "  ]\n}\n";
  close_out oc

(* Minimal row scraper for the one-row-per-line format [emit_json]
   writes: enough to diff an emitted file against the committed one
   structurally (same rows, required fields present, identical budgets,
   budgets monotone across tiers) without pinning the host-dependent
   numbers. *)
let scrape_field line key : string option =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat and n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while !stop < n && line.[!stop] <> ',' && line.[!stop] <> '}' do
      incr stop
    done;
    Some (String.trim (String.sub line start (!stop - start)))

let scrape_rows path =
  let ic = open_in path in
  let rows = ref [] and schema = ref None in
  (try
     while true do
       let line = input_line ic in
       if !schema = None then
         (match scrape_field line "schema" with
          | Some s -> schema := Some s
          | None -> ());
       match scrape_field line "name", scrape_field line "tier" with
       | Some name, Some tier ->
         let num key = Option.map float_of_string (scrape_field line key) in
         rows := (Scanf.sscanf name "%S" Fun.id,
                  Scanf.sscanf tier "%S" Fun.id,
                  [ "insns", num "insns"; "mips", num "mips";
                    "insns_per_sec", num "insns_per_sec";
                    "bytes_per_insn", num "bytes_per_insn";
                    "alloc_budget", num "alloc_budget" ]) :: !rows
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  (!schema, List.rev !rows)

let diff_schema committed emitted =
  let fail = ref false in
  let err fmt = Fmt.kstr (fun m -> fail := true; Fmt.epr "FAIL %s@." m) fmt in
  let (cs, crows) = scrape_rows committed in
  let (es, erows) = scrape_rows emitted in
  if cs <> Some "2" then err "%s: schema is %a, want 2" committed
      Fmt.(option ~none:(any "absent") string) cs;
  if es <> Some "2" then err "%s: schema is %a, want 2" emitted
      Fmt.(option ~none:(any "absent") string) es;
  let key (n, t, _) = n ^ "/" ^ t in
  let ckeys = List.map key crows and ekeys = List.map key erows in
  List.iter
    (fun k ->
       if not (List.mem k ekeys) then
         err "row %s present in %s but missing from %s" k committed emitted)
    ckeys;
  List.iter
    (fun k ->
       if not (List.mem k ckeys) then
         err "row %s present in %s but missing from %s" k emitted committed)
    ekeys;
  let check_rows file rows =
    List.iter
      (fun (n, t, fields) ->
         List.iter
           (fun (fname, v) ->
              match v with
              | None ->
                err "%s: row %s/%s is missing field %S" file n t fname
              | Some f ->
                if (fname = "mips" || fname = "insns") && f <= 0.0 then
                  err "%s: row %s/%s has non-positive %s" file n t fname)
           fields;
         (* budgets must go down (or hold) as the tier gets faster *)
         let budget tier =
           List.find_map
             (fun (n', t', fs) ->
                if n' = n && t' = tier then List.assoc "alloc_budget" fs
                else None)
             rows
         in
         match budget "threaded", budget "predecode", budget "ref" with
         | Some th, Some pd, _ when th > pd ->
           err "%s: %s threaded budget %.2f exceeds predecode %.2f"
             file n th pd
         | _, Some pd, Some rf when pd > rf ->
           err "%s: %s predecode budget %.2f exceeds ref %.2f" file n pd rf
         | _ -> ())
      rows
  in
  check_rows committed crows;
  check_rows emitted erows;
  (* committed budgets are the contract: the emitted file must carry
     the same ones *)
  List.iter
    (fun (n, t, fields) ->
       match List.assoc "alloc_budget" fields with
       | None -> ()
       | Some cb ->
         List.iter
           (fun (n', t', fields') ->
              if n' = n && t' = t then
                match List.assoc "alloc_budget" fields' with
                | Some eb when Float.abs (eb -. cb) > 1e-9 ->
                  err "row %s/%s: alloc_budget %.2f in %s but %.2f in %s"
                    n t cb committed eb emitted
                | _ -> ())
           erows)
    crows;
  not !fail

(* -- Regression gates --------------------------------------------------- *)

let check samples =
  let ok = ref true in
  let err fmt = Fmt.kstr (fun m -> ok := false; Fmt.epr "FAIL %s@." m) fmt in
  List.iter
    (fun s ->
       (match alloc_budget ~tier:s.s_tier s.s_name with
        | Some budget when s.s_bytes_per_insn > budget ->
          err "%s/%s: %.3f bytes/insn exceeds budget %.2f"
            s.s_name (Tier.name s.s_tier) s.s_bytes_per_insn budget
        | _ -> ());
       (match mips_floor ~tier:s.s_tier s.s_name with
        | Some floor when s.s_mips < floor ->
          err "%s/%s: %.1f MIPS below floor %.1f"
            s.s_name (Tier.name s.s_tier) s.s_mips floor
        | _ -> ()))
    samples;
  let mips_of tier =
    List.find_map
      (fun s ->
         if s.s_name = relative_workload && s.s_tier = tier
         then Some s.s_mips else None)
      samples
  in
  (match mips_of Tier.Threaded, mips_of Tier.Predecode with
   | Some th, Some pd when th < relative_floor *. pd ->
     err "%s: threaded %.1f MIPS < %.1fx predecode (%.1f MIPS)"
       relative_workload th relative_floor pd
   | _ -> ());
  !ok

(* -- Superop pair profiler ---------------------------------------------- *)

(* Dynamic adjacent micro-op class pairs over the 25-kernel registry
   (Table II), plus how much of the dispatch stream the threaded tier's
   fusion rules actually cover.  This is the profile the fusion rule
   set was selected against: cmp+branch back-edges, address-gen
   followed by the memory access, and the [.xi] add+index-bump idiom
   dominate. *)
let profile_pairs () =
  let pairs : (string * string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let total = ref 0 and dispatches = ref 0 and superops = ref 0 in
  List.iter
    (fun k ->
       let c = Compile.compile k.Kernel.kernel in
       let prog = c.Compile.program in
       let pre = Program.predecode prog in
       let uops = pre.Program.uops in
       let marks = Threaded.fused_heads prog in
       let mem = Memory.create () in
       k.Kernel.init c.Compile.array_base mem;
       let h = Exec.create_hart () in
       let mi = Exec.direct_mem mem in
       let ev = Exec.create_event () in
       let prev = ref None and absorbed = ref false in
       let fuel = ref 50_000_000 in
       (try
          while !fuel > 0 do
            let pc = h.Exec.pc in
            if pc >= 0 && pc < Array.length uops then begin
              incr total;
              let cls = Program.uop_class uops.(pc) in
              (match !prev with
               | Some p ->
                 let key = (p, cls) in
                 (match Hashtbl.find_opt pairs key with
                  | Some r -> incr r
                  | None -> Hashtbl.add pairs key (ref 1))
               | None -> ());
              prev := Some cls;
              if !absorbed then absorbed := false
              else begin
                incr dispatches;
                if marks.(pc) then begin incr superops; absorbed := true end
              end
            end;
            Exec.step pre h mi ev;
            decr fuel
          done;
          Fmt.epr "warning: %s out of profiling fuel@." k.Kernel.name
        with Exec.Halted -> () | Exec.Trap _ -> ()))
    Registry.table2;
  let rows =
    Hashtbl.fold (fun (a, b) r acc -> (a, b, !r) :: acc) pairs []
    |> List.sort (fun (_, _, x) (_, _, y) -> compare y x)
  in
  Fmt.pr "dynamic adjacent micro-op pairs, %d kernels, %d insns:@."
    (List.length Registry.table2) !total;
  Fmt.pr "%-22s %12s %7s@." "pair" "count" "share";
  let shown = ref 0 in
  List.iter
    (fun (a, b, n) ->
       if !shown < 20 then begin
         incr shown;
         Fmt.pr "%-22s %12d %6.2f%%@." (a ^ "+" ^ b) n
           (100.0 *. float_of_int n /. float_of_int !total)
       end)
    rows;
  if List.length rows > 20 then
    Fmt.pr "(%d more pairs not shown)@." (List.length rows - 20);
  Fmt.pr "@.superop coverage: %d dispatches for %d insns \
          (%d superops, %.1f%% of insns fused)@."
    !dispatches !total !superops
    (100.0 *. float_of_int (!total - !dispatches) /. float_of_int !total)

(* -- Driver ------------------------------------------------------------- *)

let () =
  let repeat = ref 3 in
  let out = ref "BENCH_interp.json" in
  let do_check = ref false in
  let do_pairs = ref false in
  let tier_filter = ref None in
  let diff = ref None in
  let set_tier s =
    match Tier.of_string s with
    | Ok t -> tier_filter := Some t
    | Error msg -> raise (Arg.Bad msg)
  in
  let diff_a = ref "" in
  Arg.parse
    [ "--repeat", Arg.Set_int repeat, "N  measurement repetitions (default 3)";
      "--json", Arg.Set_string out,
      "FILE  JSON output (default BENCH_interp.json)";
      "-o", Arg.Set_string out, "FILE  alias for --json";
      "--tier", Arg.String set_tier,
      "T  measure only this tier (ref|predecode|threaded; default: all)";
      "--check", Arg.Set do_check,
      "  fail if any workload exceeds its bytes/insn budget or misses \
       its MIPS floor";
      "--profile-pairs", Arg.Set do_pairs,
      "  profile dynamic adjacent-uop pairs over the kernel registry \
       and exit";
      "--diff-schema",
      Arg.Tuple [ Arg.Set_string diff_a;
                  Arg.String (fun b -> diff := Some (!diff_a, b)) ],
      "COMMITTED EMITTED  structurally compare two benchmark JSON files \
       and exit" ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "interpreter micro-benchmark";
  match !diff with
  | Some (a, b) ->
    if diff_schema a b then Fmt.pr "schema diff: OK@." else exit 1
  | None ->
  if !do_pairs then profile_pairs ()
  else begin
    let tiers =
      match !tier_filter with Some t -> [ t ] | None -> Tier.all in
    let workloads =
      ("straightline",
       straightline ~iters:1_000_000, fun () -> Memory.create ())
      :: List.map
        (fun name ->
           let prog, mem_of = kernel_workload name in
           (name, prog, mem_of))
        [ "sgemm-uc"; "war-uc"; "bfs-uc-db"; "adpcm-or" ]
    in
    let samples =
      List.concat_map
        (fun (name, prog, mem_of) ->
           List.map
             (fun tier -> measure ~repeat:!repeat ~tier name prog mem_of)
             tiers)
        workloads
    in
    Fmt.pr "%-14s %-10s %12s %9s %13s %9s@." "workload" "tier" "insns"
      "MIPS" "insns/sec" "B/insn";
    List.iter
      (fun s ->
         Fmt.pr "%-14s %-10s %12d %9.2f %13.0f %9.3f@."
           s.s_name (Tier.name s.s_tier) s.s_insns s.s_mips
           (s.s_mips *. 1e6) s.s_bytes_per_insn)
      samples;
    emit_json !out samples;
    Fmt.pr "@.wrote %s@." !out;
    if !do_check then
      if check samples then Fmt.pr "benchmark gates: OK@."
      else exit 1
  end
