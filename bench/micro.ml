(* Interpreter micro-benchmark: host-side throughput (MIPS) and
   allocation rate (bytes/instruction) of the functional executor, per
   execution tier, on a synthetic straight-line kernel and a few
   representative compiled kernels.

   Usage:
     dune exec bench/micro.exe                   # table + BENCH_interp.json
     dune exec bench/micro.exe -- --check        # also enforce the committed
                                                 # bytes/insn + MIPS gates
     dune exec bench/micro.exe -- --tier threaded --check
     dune exec bench/micro.exe -- --repeat 5 --json out.json
     dune exec bench/micro.exe -- --profile-pairs
     dune exec bench/micro.exe -- --diff-schema BENCH_interp.json out.json

   MIPS numbers are host- and load-dependent (the table reports the best
   of [--repeat] timing windows); bytes/insn is deterministic, which is
   why the --check regression gate is primarily on allocation.  The MIPS
   gate is deliberately loose: absolute floors far below any healthy
   host, plus relative floors (each tier must beat the one below it)
   that are host-independent.  --profile-pairs is the static superop
   profiler: it counts dynamic adjacent micro-op class pairs over the
   25-kernel registry and reports what fraction of dispatches the
   threaded tier's fusion rules cover — the data the rule set was chosen
   against.  --profile-triples does the same for adjacent triples and
   reports the block tier's static plan and dynamic dispatch coverage
   (insns per dispatch, dispatch-size histogram). *)

module B = Xloops.Asm.Builder
module Program = Xloops.Asm.Program
module Memory = Xloops.Mem.Memory
module Exec = Xloops.Sim.Exec
module Tier = Xloops.Sim.Tier
module Threaded = Xloops.Sim.Threaded
module Registry = Xloops.Kernels.Registry
module Kernel = Xloops.Kernels.Kernel
module Compile = Xloops.Compiler.Compile

(* Pre-optimization reference, measured with the same workloads on the
   same host immediately before the zero-allocation interpreter core
   landed (boxed registers, fresh event record and memory closures per
   step).  Kept for the speedup column of BENCH_interp.json. *)
let baseline = [
  (* name, MIPS, bytes/insn *)
  "straightline", 55.0, 168.9;
  "sgemm-uc", 52.0, 147.4;
  "war-uc", 39.0, 167.1;
  "bfs-uc-db", 38.0, 118.8;
  "adpcm-or", 49.0, 144.5;
]

(* Committed allocation budgets in bytes per dynamic instruction; a
   regression past these fails --check (and CI).  The threaded tier is
   gated at (effectively) zero: it has no event scratch and no boxed
   values on any path, so any allocation is a design regression.  The
   predecode tier's residue is the boxed int32s crossing the [mem_iface]
   closure boundary on loads (the LSQ-overlay interface is int32-typed);
   budgets are ~2x the values measured at commit time.  The ref tier
   legitimately allocates (int32 register views); its loose budget only
   catches catastrophic drift. *)
let alloc_budget ~(tier : Tier.t) name =
  match tier with
  | Tier.Ref -> Some 200.0
  | Tier.Predecode ->
    List.assoc_opt name
      [ "straightline", 0.10;
        "sgemm-uc", 1.00;
        "war-uc", 2.00;
        "bfs-uc-db", 2.00;
        "adpcm-or", 0.50 ]
  | Tier.Threaded | Tier.Block ->
    (* one budget for both closure tiers and all workloads: nothing on
       either tier may allocate *)
    Some 0.05

(* Absolute MIPS floors: far below a healthy run on any plausible host
   (the closure tiers measure several hundred MIPS locally), so they
   catch order-of-magnitude regressions — an accidental re-compile per
   run, a debug path left on — without flaking on slow CI runners.
   Every workload now carries a floor on every tier: the bfs-uc-db
   episode (a sub-millisecond timing window absorbing the previous
   tier's deferred minor collection read as a predecode regression)
   showed that unfloored kernels let measurement artifacts into the
   committed file unchallenged.  The host-independent gates are the
   relative floors below. *)
let mips_floor ~(tier : Tier.t) name =
  match tier, name with
  | Tier.Threaded, "straightline" -> Some 100.0
  | Tier.Block, "straightline" -> Some 140.0
  | Tier.Predecode, "straightline" -> Some 40.0
  | Tier.Ref, _ -> Some 15.0
  | Tier.Predecode, _ -> Some 25.0
  | (Tier.Threaded | Tier.Block), _ -> Some 40.0

(* Host-independent gates: each pair is (workload, faster tier, baseline
   tier, minimum MIPS ratio), both sides measured in the same process.
   The predecode-vs-ref rows at 1.0 pin the bfs-uc-db fix: the predecode
   tier strictly dominates the boxed reference on every kernel, so any
   recurrence of a predecode-loses row fails --check instead of landing
   in the committed file. *)
let relative_floors =
  [ "straightline", Tier.Threaded, Tier.Predecode, 1.2;
    "straightline", Tier.Block, Tier.Threaded, 1.3 ]
  @ List.map
    (fun (name, _, _) -> (name, Tier.Predecode, Tier.Ref, 1.0))
    baseline

(* 16 dependent adds + decrement + branch per iteration: pure register
   ALU work, the worst case for interpreter dispatch overhead. *)
let straightline ~iters =
  let b = B.create () in
  B.li b 8 1;
  B.li b 9 iters;
  B.li b 10 0;
  B.label b "top";
  for _ = 0 to 15 do B.add b 10 10 8 done;
  B.addi b 9 9 (-1);
  B.bne b 9 0 "top";
  B.halt b;
  B.assemble b

type sample = {
  s_name : string;
  s_tier : Tier.t;
  s_insns : int;
  s_mips : float;          (* best of the repeats *)
  s_bytes_per_insn : float;
}

(* Minimum timing-window length.  The compiled kernels retire only
   19k–60k instructions (~0.2–0.6 ms), which is small enough for timer
   quantization — and for whichever run happens to absorb the previous
   tier's deferred minor collection — to swing a single-sample MIPS
   number by 30%+ in either direction.  That is exactly how the
   committed bfs-uc-db predecode row came to read slower than ref: the
   first post-warm-up predecode run paid the minor GC of the ref tier's
   ~7 B/insn garbage inside a 0.24 ms window.  Short workloads are
   therefore batched back to back (fresh memories built outside the
   window) until the window is at least this long, and the minor heap is
   drained before the clock starts so no sample inherits another tier's
   collection debt. *)
let min_window = 0.02

let measure ~repeat ~tier name prog mem_of =
  let run = Tier.run_serial_with tier in
  let insns_of = function
    | Ok r -> r.Exec.dynamic_insns
    | Error stop -> Fmt.failwith "%s: %a" name Exec.pp_stop stop
  in
  (* Warm-up run: predecode/compile memos, branch-predictable GC state;
     also sizes the batch for the minimum window. *)
  let t0 = Unix.gettimeofday () in
  let insns = insns_of (run prog (mem_of ())) in
  let t1 = Unix.gettimeofday () -. t0 in
  let batch =
    max 1 (min 256 (int_of_float (ceil (min_window /. Float.max t1 1e-6))))
  in
  (* Allocation is measured over a single un-batched run, minor heap
     drained first: on OCaml 5.1 a minor collection inside the counted
     region credits roughly the whole minor arena to
     [Gc.allocated_bytes], so a batched window that crosses a minor GC
     over-reports the compiled kernels' ~17 KB/run by 100x.  One run
     stays under the trigger, and the committed budgets were measured
     this way. *)
  let alloc_mem = mem_of () in
  Gc.minor ();
  let a0 = Gc.allocated_bytes () in
  let ai = insns_of (run prog alloc_mem) in
  let bytes = (Gc.allocated_bytes () -. a0) /. float_of_int ai in
  let best_mips = ref 0.0 in
  for _ = 1 to repeat do
    (* fresh memories outside the window: runs mutate their memory *)
    let mems = Array.init batch (fun _ -> mem_of ()) in
    Gc.minor ();
    let total = ref 0 in
    let t0 = Unix.gettimeofday () in
    for i = 0 to batch - 1 do
      total := !total + insns_of (run prog mems.(i))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    best_mips :=
      Float.max !best_mips (float_of_int !total /. dt /. 1e6)
  done;
  { s_name = name; s_tier = tier; s_insns = insns; s_mips = !best_mips;
    s_bytes_per_insn = bytes }

let kernel_workload name =
  let k = Registry.find name in
  let c = Compile.compile k.Kernel.kernel in
  (c.Compile.program,
   fun () ->
     let mem = Memory.create () in
     k.Kernel.init c.Compile.array_base mem;
     mem)

(* -- JSON emission and schema diff ------------------------------------- *)

(* One row object per line: BENCH_interp.json is both human-skimmable
   and trivially re-parseable by [diff_schema] below without a JSON
   dependency. *)
let emit_json path samples =
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n  \"schema\": 3,\n  \"workloads\": [\n";
  List.iteri
    (fun i s ->
       pf "    {\"name\": %S, \"tier\": %S, \"insns\": %d, \
           \"mips\": %.2f, \"insns_per_sec\": %.0f, \
           \"bytes_per_insn\": %.2f"
         s.s_name (Tier.name s.s_tier) s.s_insns s.s_mips
         (s.s_mips *. 1e6) s.s_bytes_per_insn;
       (match alloc_budget ~tier:s.s_tier s.s_name with
        | Some b -> pf ", \"alloc_budget\": %.2f" b
        | None -> ());
       (match mips_floor ~tier:s.s_tier s.s_name with
        | Some f -> pf ", \"mips_floor\": %.1f" f
        | None -> ());
       (match s.s_tier,
              List.find_opt (fun (n, _, _) -> n = s.s_name) baseline with
        | (Tier.Predecode | Tier.Threaded | Tier.Block), Some (_, bm, bb) ->
          pf ", \"baseline_mips\": %.2f, \"baseline_bytes_per_insn\": %.2f, \
              \"speedup\": %.2f, \"alloc_ratio\": %.4f"
            bm bb (s.s_mips /. bm) (s.s_bytes_per_insn /. bb)
        | _ -> ());
       pf "}%s\n" (if i = List.length samples - 1 then "" else ","))
    samples;
  pf "  ]\n}\n";
  close_out oc

(* Minimal row scraper for the one-row-per-line format [emit_json]
   writes: enough to diff an emitted file against the committed one
   structurally (same rows, required fields present, identical budgets,
   budgets monotone across tiers) without pinning the host-dependent
   numbers. *)
let scrape_field line key : string option =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat and n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while !stop < n && line.[!stop] <> ',' && line.[!stop] <> '}' do
      incr stop
    done;
    Some (String.trim (String.sub line start (!stop - start)))

let scrape_rows path =
  let ic = open_in path in
  let rows = ref [] and schema = ref None in
  (try
     while true do
       let line = input_line ic in
       if !schema = None then
         (match scrape_field line "schema" with
          | Some s -> schema := Some s
          | None -> ());
       match scrape_field line "name", scrape_field line "tier" with
       | Some name, Some tier ->
         let num key = Option.map float_of_string (scrape_field line key) in
         rows := (Scanf.sscanf name "%S" Fun.id,
                  Scanf.sscanf tier "%S" Fun.id,
                  [ "insns", num "insns"; "mips", num "mips";
                    "insns_per_sec", num "insns_per_sec";
                    "bytes_per_insn", num "bytes_per_insn";
                    "alloc_budget", num "alloc_budget" ]) :: !rows
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  (!schema, List.rev !rows)

let diff_schema committed emitted =
  let fail = ref false in
  let err fmt = Fmt.kstr (fun m -> fail := true; Fmt.epr "FAIL %s@." m) fmt in
  let (cs, crows) = scrape_rows committed in
  let (es, erows) = scrape_rows emitted in
  if cs <> Some "3" then err "%s: schema is %a, want 3" committed
      Fmt.(option ~none:(any "absent") string) cs;
  if es <> Some "3" then err "%s: schema is %a, want 3" emitted
      Fmt.(option ~none:(any "absent") string) es;
  let key (n, t, _) = n ^ "/" ^ t in
  let ckeys = List.map key crows and ekeys = List.map key erows in
  List.iter
    (fun k ->
       if not (List.mem k ekeys) then
         err "row %s present in %s but missing from %s" k committed emitted)
    ckeys;
  List.iter
    (fun k ->
       if not (List.mem k ckeys) then
         err "row %s present in %s but missing from %s" k emitted committed)
    ekeys;
  let check_rows file rows =
    List.iter
      (fun (n, t, fields) ->
         List.iter
           (fun (fname, v) ->
              match v with
              | None ->
                err "%s: row %s/%s is missing field %S" file n t fname
              | Some f ->
                if (fname = "mips" || fname = "insns") && f <= 0.0 then
                  err "%s: row %s/%s has non-positive %s" file n t fname)
           fields;
         (* budgets must go down (or hold) as the tier gets faster *)
         let budget tier =
           List.find_map
             (fun (n', t', fs) ->
                if n' = n && t' = tier then List.assoc "alloc_budget" fs
                else None)
             rows
         in
         let pairwise fast slow =
           match budget fast, budget slow with
           | Some f, Some s when f > s ->
             err "%s: %s %s budget %.2f exceeds %s %.2f" file n fast f slow s
           | _ -> ()
         in
         pairwise "block" "threaded";
         pairwise "threaded" "predecode";
         pairwise "predecode" "ref")
      rows
  in
  check_rows committed crows;
  check_rows emitted erows;
  (* committed budgets are the contract: the emitted file must carry
     the same ones *)
  List.iter
    (fun (n, t, fields) ->
       match List.assoc "alloc_budget" fields with
       | None -> ()
       | Some cb ->
         List.iter
           (fun (n', t', fields') ->
              if n' = n && t' = t then
                match List.assoc "alloc_budget" fields' with
                | Some eb when Float.abs (eb -. cb) > 1e-9 ->
                  err "row %s/%s: alloc_budget %.2f in %s but %.2f in %s"
                    n t cb committed eb emitted
                | _ -> ())
           erows)
    crows;
  not !fail

(* -- Regression gates --------------------------------------------------- *)

let check samples =
  let ok = ref true in
  let err fmt = Fmt.kstr (fun m -> ok := false; Fmt.epr "FAIL %s@." m) fmt in
  List.iter
    (fun s ->
       (match alloc_budget ~tier:s.s_tier s.s_name with
        | Some budget when s.s_bytes_per_insn > budget ->
          err "%s/%s: %.3f bytes/insn exceeds budget %.2f"
            s.s_name (Tier.name s.s_tier) s.s_bytes_per_insn budget
        | _ -> ());
       (match mips_floor ~tier:s.s_tier s.s_name with
        | Some floor when s.s_mips < floor ->
          err "%s/%s: %.1f MIPS below floor %.1f"
            s.s_name (Tier.name s.s_tier) s.s_mips floor
        | _ -> ()))
    samples;
  let mips_of name tier =
    List.find_map
      (fun s ->
         if s.s_name = name && s.s_tier = tier then Some s.s_mips else None)
      samples
  in
  List.iter
    (fun (wl, fast, slow, ratio) ->
       match mips_of wl fast, mips_of wl slow with
       | Some f, Some s when f < ratio *. s ->
         err "%s: %s %.1f MIPS < %.1fx %s (%.1f MIPS)"
           wl (Tier.name fast) f ratio (Tier.name slow) s
       | _ -> ())
    relative_floors;
  !ok

(* -- Superop pair profiler ---------------------------------------------- *)

(* Dynamic adjacent micro-op class pairs over the 25-kernel registry
   (Table II), plus how much of the dispatch stream the threaded tier's
   fusion rules actually cover.  This is the profile the fusion rule
   set was selected against: cmp+branch back-edges, address-gen
   followed by the memory access, and the [.xi] add+index-bump idiom
   dominate. *)
let profile_pairs () =
  let pairs : (string * string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let total = ref 0 and dispatches = ref 0 and superops = ref 0 in
  List.iter
    (fun k ->
       let c = Compile.compile k.Kernel.kernel in
       let prog = c.Compile.program in
       let pre = Program.predecode prog in
       let uops = pre.Program.uops in
       let marks = Threaded.fused_heads prog in
       let mem = Memory.create () in
       k.Kernel.init c.Compile.array_base mem;
       let h = Exec.create_hart () in
       let mi = Exec.direct_mem mem in
       let ev = Exec.create_event () in
       let prev = ref None and absorbed = ref false in
       let fuel = ref 50_000_000 in
       (try
          while !fuel > 0 do
            let pc = h.Exec.pc in
            if pc >= 0 && pc < Array.length uops then begin
              incr total;
              let cls = Program.uop_class uops.(pc) in
              (match !prev with
               | Some p ->
                 let key = (p, cls) in
                 (match Hashtbl.find_opt pairs key with
                  | Some r -> incr r
                  | None -> Hashtbl.add pairs key (ref 1))
               | None -> ());
              prev := Some cls;
              if !absorbed then absorbed := false
              else begin
                incr dispatches;
                if marks.(pc) then begin incr superops; absorbed := true end
              end
            end;
            Exec.step pre h mi ev;
            decr fuel
          done;
          Fmt.epr "warning: %s out of profiling fuel@." k.Kernel.name
        with Exec.Halted -> () | Exec.Trap _ -> ()))
    Registry.table2;
  let rows =
    Hashtbl.fold (fun (a, b) r acc -> (a, b, !r) :: acc) pairs []
    |> List.sort (fun (_, _, x) (_, _, y) -> compare y x)
  in
  Fmt.pr "dynamic adjacent micro-op pairs, %d kernels, %d insns:@."
    (List.length Registry.table2) !total;
  Fmt.pr "%-22s %12s %7s@." "pair" "count" "share";
  let shown = ref 0 in
  List.iter
    (fun (a, b, n) ->
       if !shown < 20 then begin
         incr shown;
         Fmt.pr "%-22s %12d %6.2f%%@." (a ^ "+" ^ b) n
           (100.0 *. float_of_int n /. float_of_int !total)
       end)
    rows;
  if List.length rows > 20 then
    Fmt.pr "(%d more pairs not shown)@." (List.length rows - 20);
  Fmt.pr "@.superop coverage: %d dispatches for %d insns \
          (%d superops, %.1f%% of insns fused)@."
    !dispatches !total !superops
    (100.0 *. float_of_int (!total - !dispatches) /. float_of_int !total)

(* -- Triple profiler and block coverage --------------------------------- *)

(* Dynamic adjacent micro-op class triples over the registry — the data
   the block tier's triple-fusion rules were chosen against — plus the
   static block plan (blocks, sizes, fused triples) and the dynamic
   block-tier dispatch coverage: how many instructions each dispatch
   retires, and what fraction of the stream runs inside multi-uop
   single-dispatch blocks. *)
let profile_triples () =
  let triples : (string * string * string, int ref) Hashtbl.t =
    Hashtbl.create 128 in
  let total = ref 0 in
  let blocks = ref 0 and block_insns = ref 0 and fused3 = ref 0 in
  let dispatches = ref 0 and dyn_insns = ref 0 and multi_insns = ref 0 in
  let hist = Array.make 65 0 in
  List.iter
    (fun k ->
       let c = Compile.compile k.Kernel.kernel in
       let prog = c.Compile.program in
       let pre = Program.predecode prog in
       let uops = pre.Program.uops in
       (* static plan *)
       let (spans, btr) = Threaded.block_plan prog in
       List.iter
         (fun (_, len) -> incr blocks; block_insns := !block_insns + len)
         spans;
       fused3 := !fused3 + List.length btr;
       (* dynamic triple census *)
       let mem = Memory.create () in
       k.Kernel.init c.Compile.array_base mem;
       let h = Exec.create_hart () in
       let mi = Exec.direct_mem mem in
       let ev = Exec.create_event () in
       let p2 = ref None and p1 = ref None in
       let fuel = ref 50_000_000 in
       (try
          while !fuel > 0 do
            let pc = h.Exec.pc in
            if pc >= 0 && pc < Array.length uops then begin
              incr total;
              let cls = Program.uop_class uops.(pc) in
              (match !p2, !p1 with
               | Some a, Some b ->
                 let key = (a, b, cls) in
                 (match Hashtbl.find_opt triples key with
                  | Some r -> incr r
                  | None -> Hashtbl.add triples key (ref 1))
               | _ -> ());
              p2 := !p1;
              p1 := Some cls
            end;
            Exec.step pre h mi ev;
            decr fuel
          done;
          Fmt.epr "warning: %s out of profiling fuel@." k.Kernel.name
        with Exec.Halted -> () | Exec.Trap _ -> ());
       (* dynamic block-tier coverage *)
       let mem = Memory.create () in
       k.Kernel.init c.Compile.array_base mem;
       match Threaded.run_serial_block_profiled prog mem with
       | Error stop, _ ->
         Fmt.failwith "%s: %a" k.Kernel.name Exec.pp_stop stop
       | Ok _, bp ->
         dispatches := !dispatches + bp.Threaded.bp_dispatches;
         dyn_insns := !dyn_insns + bp.Threaded.bp_insns;
         Array.iteri
           (fun i n ->
              if n > 0 then begin
                let i = min i (Array.length hist - 1) in
                hist.(i) <- hist.(i) + n;
                if i >= 2 then multi_insns := !multi_insns + (i * n)
              end)
           bp.Threaded.bp_hist)
    Registry.table2;
  let rows =
    Hashtbl.fold (fun (a, b, c) r acc -> (a, b, c, !r) :: acc) triples []
    |> List.sort (fun (_, _, _, x) (_, _, _, y) -> compare y x)
  in
  Fmt.pr "dynamic adjacent micro-op triples, %d kernels, %d insns:@."
    (List.length Registry.table2) !total;
  Fmt.pr "%-30s %12s %7s@." "triple" "count" "share";
  let shown = ref 0 in
  List.iter
    (fun (a, b, c, n) ->
       if !shown < 20 then begin
         incr shown;
         Fmt.pr "%-30s %12d %6.2f%%@."
           (a ^ "+" ^ b ^ "+" ^ c) n
           (100.0 *. float_of_int n /. float_of_int !total)
       end)
    rows;
  if List.length rows > 20 then
    Fmt.pr "(%d more triples not shown)@." (List.length rows - 20);
  Fmt.pr "@.static block plan: %d blocks covering %d insns \
          (%.1f insns/block), %d fused triples@."
    !blocks !block_insns
    (float_of_int !block_insns /. float_of_int (max 1 !blocks)) !fused3;
  Fmt.pr "block-tier coverage: %d dispatches for %d insns \
          (%.2f insns/dispatch), %.1f%% of insns in multi-uop blocks@."
    !dispatches !dyn_insns
    (float_of_int !dyn_insns /. float_of_int (max 1 !dispatches))
    (100.0 *. float_of_int !multi_insns /. float_of_int (max 1 !dyn_insns));
  Fmt.pr "dispatch-size histogram (insns retired -> dispatches):@.";
  Array.iteri
    (fun i n -> if n > 0 then Fmt.pr "  %3d %12d@." i n)
    hist

(* -- Driver ------------------------------------------------------------- *)

let () =
  let repeat = ref 3 in
  let out = ref "BENCH_interp.json" in
  let do_check = ref false in
  let do_pairs = ref false in
  let do_triples = ref false in
  let tier_filter = ref None in
  let diff = ref None in
  let set_tier s =
    match Tier.of_string s with
    | Ok t -> tier_filter := Some t
    | Error msg -> raise (Arg.Bad msg)
  in
  let diff_a = ref "" in
  Arg.parse
    [ "--repeat", Arg.Set_int repeat, "N  measurement repetitions (default 3)";
      "--json", Arg.Set_string out,
      "FILE  JSON output (default BENCH_interp.json)";
      "-o", Arg.Set_string out, "FILE  alias for --json";
      "--tier", Arg.String set_tier,
      "T  measure only this tier (ref|predecode|threaded|block; \
       default: all)";
      "--check", Arg.Set do_check,
      "  fail if any workload exceeds its bytes/insn budget or misses \
       its MIPS floor";
      "--profile-pairs", Arg.Set do_pairs,
      "  profile dynamic adjacent-uop pairs over the kernel registry \
       and exit";
      "--profile-triples", Arg.Set do_triples,
      "  profile dynamic adjacent-uop triples and block-tier dispatch \
       coverage over the kernel registry and exit";
      "--diff-schema",
      Arg.Tuple [ Arg.Set_string diff_a;
                  Arg.String (fun b -> diff := Some (!diff_a, b)) ],
      "COMMITTED EMITTED  structurally compare two benchmark JSON files \
       and exit" ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "interpreter micro-benchmark";
  match !diff with
  | Some (a, b) ->
    if diff_schema a b then Fmt.pr "schema diff: OK@." else exit 1
  | None ->
  if !do_pairs then profile_pairs ()
  else if !do_triples then profile_triples ()
  else begin
    let tiers =
      match !tier_filter with Some t -> [ t ] | None -> Tier.all in
    let workloads =
      ("straightline",
       straightline ~iters:1_000_000, fun () -> Memory.create ())
      :: List.map
        (fun name ->
           let prog, mem_of = kernel_workload name in
           (name, prog, mem_of))
        [ "sgemm-uc"; "war-uc"; "bfs-uc-db"; "adpcm-or" ]
    in
    let samples =
      List.concat_map
        (fun (name, prog, mem_of) ->
           List.map
             (fun tier -> measure ~repeat:!repeat ~tier name prog mem_of)
             tiers)
        workloads
    in
    Fmt.pr "%-14s %-10s %12s %9s %13s %9s@." "workload" "tier" "insns"
      "MIPS" "insns/sec" "B/insn";
    List.iter
      (fun s ->
         Fmt.pr "%-14s %-10s %12d %9.2f %13.0f %9.3f@."
           s.s_name (Tier.name s.s_tier) s.s_insns s.s_mips
           (s.s_mips *. 1e6) s.s_bytes_per_insn)
      samples;
    emit_json !out samples;
    Fmt.pr "@.wrote %s@." !out;
    if !do_check then
      if check samples then Fmt.pr "benchmark gates: OK@."
      else exit 1
  end
