(* Interpreter micro-benchmark: host-side throughput (MIPS) and
   allocation rate (bytes/instruction) of the functional executor on a
   synthetic straight-line kernel and a few representative compiled
   kernels.

   Usage:
     dune exec bench/micro.exe                  # table + BENCH_interp.json
     dune exec bench/micro.exe -- --check       # also enforce the committed
                                                # bytes/insn thresholds
     dune exec bench/micro.exe -- --repeat 5 -o out.json

   MIPS numbers are host- and load-dependent (the table reports the best
   of [--repeat] runs); bytes/insn is deterministic, which is why the
   --check regression gate is on allocation, not speed.  The JSON also
   carries the pre-optimization baseline (boxed int32 register file,
   per-step event allocation, per-access closure dispatch) measured on
   the same host, so the speedup is recorded alongside the numbers. *)

module B = Xloops.Asm.Builder
module Memory = Xloops.Mem.Memory
module Exec = Xloops.Sim.Exec
module Registry = Xloops.Kernels.Registry
module Kernel = Xloops.Kernels.Kernel
module Compile = Xloops.Compiler.Compile

(* Pre-optimization reference, measured with the same workloads on the
   same host immediately before the zero-allocation interpreter core
   landed (boxed registers, fresh event record and memory closures per
   step).  Kept for the speedup column of BENCH_interp.json. *)
let baseline = [
  (* name, MIPS, bytes/insn *)
  "straightline", 55.0, 168.9;
  "sgemm-uc", 52.0, 147.4;
  "war-uc", 39.0, 167.1;
  "bfs-uc-db", 38.0, 118.8;
  "adpcm-or", 49.0, 144.5;
]

(* Committed allocation budgets, in bytes per dynamic instruction; a
   regression past these fails --check (and CI).  Roughly 2x the values
   measured at commit time (straightline 0.0, sgemm-uc 2.3, war-uc 0.9,
   bfs-uc-db 0.9, adpcm-or 0.3); the slack covers GC accounting noise,
   not design drift. *)
let alloc_budget = [
  "straightline", 0.5;
  "sgemm-uc", 5.0;
  "war-uc", 2.0;
  "bfs-uc-db", 2.0;
  "adpcm-or", 1.0;
]

(* 16 dependent adds + decrement + branch per iteration: pure register
   ALU work, the worst case for interpreter dispatch overhead. *)
let straightline ~iters =
  let b = B.create () in
  B.li b 8 1;
  B.li b 9 iters;
  B.li b 10 0;
  B.label b "top";
  for _ = 0 to 15 do B.add b 10 10 8 done;
  B.addi b 9 9 (-1);
  B.bne b 9 0 "top";
  B.halt b;
  B.assemble b

type sample = {
  s_name : string;
  s_insns : int;
  s_mips : float;          (* best of the repeats *)
  s_bytes_per_insn : float;
}

let measure ~repeat name prog mem_of =
  (* Warm-up run: predecode memo, branch-predictable GC state. *)
  (match Exec.run_serial prog (mem_of ()) with
   | Ok _ -> ()
   | Error stop -> Fmt.failwith "%s: %a" name Exec.pp_stop stop);
  let best_mips = ref 0.0 and bytes = ref 0.0 and insns = ref 0 in
  for _ = 1 to repeat do
    let mem = mem_of () in
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    (match Exec.run_serial prog mem with
     | Ok r ->
       let dt = Unix.gettimeofday () -. t0 in
       let da = Gc.allocated_bytes () -. a0 in
       insns := r.Exec.dynamic_insns;
       best_mips :=
         Float.max !best_mips
           (float_of_int r.Exec.dynamic_insns /. dt /. 1e6);
       bytes := da /. float_of_int r.Exec.dynamic_insns
     | Error stop -> Fmt.failwith "%s: %a" name Exec.pp_stop stop)
  done;
  { s_name = name; s_insns = !insns; s_mips = !best_mips;
    s_bytes_per_insn = !bytes }

let kernel_workload name =
  let k = Registry.find name in
  let c = Compile.compile k.Kernel.kernel in
  (c.Compile.program,
   fun () ->
     let mem = Memory.create () in
     k.Kernel.init c.Compile.array_base mem;
     mem)

let emit_json path samples =
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n  \"workloads\": [\n";
  List.iteri
    (fun i s ->
       let base =
         List.find_opt (fun (n, _, _) -> n = s.s_name) baseline in
       pf "    {\"name\": %S, \"insns\": %d, \"mips\": %.2f,\n"
         s.s_name s.s_insns s.s_mips;
       pf "     \"insns_per_sec\": %.0f, \"bytes_per_insn\": %.2f"
         (s.s_mips *. 1e6) s.s_bytes_per_insn;
       (match base with
        | Some (_, bm, bb) ->
          pf ",\n     \"baseline_mips\": %.2f, \"baseline_bytes_per_insn\": %.2f,\n"
            bm bb;
          pf "     \"speedup\": %.2f, \"alloc_ratio\": %.4f"
            (s.s_mips /. bm)
            (s.s_bytes_per_insn /. bb)
        | None -> ());
       pf "}%s\n" (if i = List.length samples - 1 then "" else ","))
    samples;
  pf "  ]\n}\n";
  close_out oc

let check samples =
  let failures =
    List.filter_map
      (fun s ->
         match List.assoc_opt s.s_name alloc_budget with
         | Some budget when s.s_bytes_per_insn > budget ->
           Some (s, budget)
         | _ -> None)
      samples
  in
  List.iter
    (fun (s, budget) ->
       Fmt.epr "FAIL %s: %.2f bytes/insn exceeds budget %.2f@."
         s.s_name s.s_bytes_per_insn budget)
    failures;
  failures = []

let () =
  let repeat = ref 3 in
  let out = ref "BENCH_interp.json" in
  let do_check = ref false in
  Arg.parse
    [ "--repeat", Arg.Set_int repeat, "N  measurement repetitions (default 3)";
      "-o", Arg.Set_string out, "FILE  JSON output (default BENCH_interp.json)";
      "--check", Arg.Set do_check,
      "  fail if any workload exceeds its bytes/insn budget" ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "interpreter micro-benchmark";
  let samples =
    measure ~repeat:!repeat "straightline" (straightline ~iters:1_000_000)
      (fun () -> Memory.create ())
    :: List.map
      (fun name ->
         let prog, mem_of = kernel_workload name in
         measure ~repeat:!repeat name prog mem_of)
      [ "sgemm-uc"; "war-uc"; "bfs-uc-db"; "adpcm-or" ]
  in
  Fmt.pr "%-14s %12s %9s %13s %9s@." "workload" "insns" "MIPS"
    "insns/sec" "B/insn";
  List.iter
    (fun s ->
       Fmt.pr "%-14s %12d %9.2f %13.0f %9.2f@."
         s.s_name s.s_insns s.s_mips (s.s_mips *. 1e6) s.s_bytes_per_insn)
    samples;
  emit_json !out samples;
  Fmt.pr "@.wrote %s@." !out;
  if !do_check then
    if check samples then Fmt.pr "allocation budgets: OK@."
    else exit 1
